//! DRAM energy model in the style of DRAMPower / Micron TN-41-01.
//!
//! The paper estimates DRAM energy with DRAMPower (§5.1); we implement
//! the same IDD-current methodology: every command contributes a charge
//! term `(IDD_op − IDD_background) × VDD × duration`, and background
//! standby power accrues with time, split between active (some bank
//! open) and precharged (all banks closed) states.
//!
//! Currents are per chip; a rank multiplies by the chip count. The
//! defaults are representative of a 2 Gb x8 DDR3-1600 device.

use crate::timing::{Cycles, TimingParams};
use gsdram_core::stats::{ReportStats, StatsNode};

/// IDD currents (mA) and supply voltage for one DRAM chip.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerParams {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// One-bank ACTIVATE-PRECHARGE current.
    pub idd0: f64,
    /// Precharge standby current.
    pub idd2n: f64,
    /// Active standby current.
    pub idd3n: f64,
    /// Read burst current.
    pub idd4r: f64,
    /// Write burst current.
    pub idd4w: f64,
    /// Refresh current.
    pub idd5: f64,
    /// Precharge power-down current (CKE low).
    pub idd2p: f64,
    /// Idle cycles before the controller drops into precharge
    /// power-down.
    pub powerdown_threshold: u64,
    /// I/O + termination energy per bit transferred (pJ/bit).
    pub io_pj_per_bit: f64,
    /// Number of chips in the rank.
    pub chips: usize,
}

impl PowerParams {
    /// Representative 2 Gb x8 DDR3-1600 device in an 8-chip rank.
    pub fn ddr3_1600_x8() -> Self {
        PowerParams {
            vdd: 1.5,
            idd0: 70.0,
            idd2n: 42.0,
            idd3n: 45.0,
            idd4r: 180.0,
            idd4w: 185.0,
            idd5: 215.0,
            idd2p: 12.0,
            powerdown_threshold: 30,
            io_pj_per_bit: 6.0,
            chips: 8,
        }
    }

    /// Representative 8 Gb x8 DDR4-2400 device in an 8-chip rank:
    /// lower VDD and standby currents than DDR3, larger refresh
    /// current for the denser die. Paired with
    /// [`TimingParams::ddr4_2400`](crate::timing::TimingParams::ddr4_2400).
    pub fn ddr4_2400_x8() -> Self {
        PowerParams {
            vdd: 1.2,
            idd0: 55.0,
            idd2n: 34.0,
            idd3n: 38.0,
            idd4r: 140.0,
            idd4w: 145.0,
            idd5: 190.0,
            idd2p: 10.0,
            powerdown_threshold: 30,
            io_pj_per_bit: 4.5,
            chips: 8,
        }
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        Self::ddr3_1600_x8()
    }
}

/// Accumulated DRAM energy, in nanojoules, per rank.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// ACTIVATE + PRECHARGE pair energy.
    pub activation_nj: f64,
    /// Read burst energy.
    pub read_nj: f64,
    /// Write burst energy.
    pub write_nj: f64,
    /// Refresh energy.
    pub refresh_nj: f64,
    /// Background standby energy (active + precharged).
    pub background_nj: f64,
    /// I/O and termination energy.
    pub io_nj: f64,
}

impl ReportStats for EnergyBreakdown {
    fn stats_node(&self, name: &str) -> StatsNode {
        StatsNode::new(name)
            .gauge("activation_nj", self.activation_nj)
            .gauge("read_nj", self.read_nj)
            .gauge("write_nj", self.write_nj)
            .gauge("refresh_nj", self.refresh_nj)
            .gauge("background_nj", self.background_nj)
            .gauge("io_nj", self.io_nj)
            .gauge("total_mj", self.total_mj())
    }
}

impl EnergyBreakdown {
    /// Folds another rank's energy into this one — the one aggregation
    /// point for multi-channel/multi-rank totals.
    pub fn merge(&mut self, other: &Self) {
        self.activation_nj += other.activation_nj;
        self.read_nj += other.read_nj;
        self.write_nj += other.write_nj;
        self.refresh_nj += other.refresh_nj;
        self.background_nj += other.background_nj;
        self.io_nj += other.io_nj;
    }

    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.activation_nj
            + self.read_nj
            + self.write_nj
            + self.refresh_nj
            + self.background_nj
            + self.io_nj
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_nj() * 1e-6
    }
}

/// Energy meter fed by the memory controller as it issues commands and
/// advances time.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    power: PowerParams,
    timing: TimingParams,
    acc: EnergyBreakdown,
    /// Cycles spent with at least one bank active / all precharged.
    active_cycles: Cycles,
    precharged_cycles: Cycles,
    /// Cycles spent in precharge power-down.
    powerdown_cycles: Cycles,
}

impl EnergyMeter {
    /// A meter for the given device parameters.
    pub fn new(power: PowerParams, timing: TimingParams) -> Self {
        EnergyMeter {
            power,
            timing,
            acc: EnergyBreakdown::default(),
            active_cycles: 0,
            precharged_cycles: 0,
            powerdown_cycles: 0,
        }
    }

    fn charge_nj(&self, current_ma: f64, cycles: Cycles) -> f64 {
        // mA × V × ns = pJ; divide by 1000 for nJ. Multiply by rank size.
        let ns = self.timing.cycles_to_ns(cycles);
        current_ma * self.power.vdd * ns * self.power.chips as f64 / 1000.0
    }

    /// Records one ACTIVATE-PRECHARGE pair (charged at ACT issue).
    pub fn on_activate(&mut self) {
        // Micron TN-41-01: E = (IDD0·tRC − IDD3N·tRAS − IDD2N·(tRC−tRAS))·VDD
        let t = &self.timing;
        let e = self.charge_nj(self.power.idd0, t.rc)
            - self.charge_nj(self.power.idd3n, t.ras)
            - self.charge_nj(self.power.idd2n, t.rc - t.ras);
        self.acc.activation_nj += e;
    }

    /// Records one read burst of `bytes` bytes.
    pub fn on_read(&mut self, bytes: u64) {
        self.acc.read_nj += self.charge_nj(self.power.idd4r - self.power.idd3n, self.timing.burst);
        self.acc.io_nj += self.power.io_pj_per_bit * (bytes * 8) as f64 / 1000.0;
    }

    /// Records one write burst of `bytes` bytes.
    pub fn on_write(&mut self, bytes: u64) {
        self.acc.write_nj += self.charge_nj(self.power.idd4w - self.power.idd3n, self.timing.burst);
        self.acc.io_nj += self.power.io_pj_per_bit * (bytes * 8) as f64 / 1000.0;
    }

    /// Records one all-bank refresh.
    pub fn on_refresh(&mut self) {
        self.acc.refresh_nj += self.charge_nj(self.power.idd5 - self.power.idd2n, self.timing.rfc);
    }

    /// Accrues background energy for `cycles` spent with (`active`) or
    /// without a bank open.
    pub fn on_elapsed(&mut self, cycles: Cycles, active: bool) {
        if active {
            self.active_cycles += cycles;
            self.acc.background_nj += self.charge_nj(self.power.idd3n, cycles);
        } else {
            self.precharged_cycles += cycles;
            self.acc.background_nj += self.charge_nj(self.power.idd2n, cycles);
        }
    }

    /// Accrues background energy for an *idle* gap (no requests queued,
    /// all banks precharged): after
    /// [`PowerParams::powerdown_threshold`] cycles of standby the rank
    /// drops into precharge power-down (IDD2P). This is an energy-only
    /// model: the wake-up latency (tXP, a few cycles) is folded into the
    /// threshold rather than charged to the next request.
    pub fn on_idle_gap(&mut self, cycles: Cycles) {
        let standby = cycles.min(self.power.powerdown_threshold);
        let pd = cycles - standby;
        self.precharged_cycles += standby;
        self.powerdown_cycles += pd;
        self.acc.background_nj += self.charge_nj(self.power.idd2n, standby);
        self.acc.background_nj += self.charge_nj(self.power.idd2p, pd);
    }

    /// Cycles spent in precharge power-down.
    pub fn powerdown_cycles(&self) -> Cycles {
        self.powerdown_cycles
    }

    /// The energy accumulated so far.
    pub fn breakdown(&self) -> EnergyBreakdown {
        self.acc
    }

    /// Cycles spent in (active, precharged) standby.
    pub fn standby_cycles(&self) -> (Cycles, Cycles) {
        (self.active_cycles, self.precharged_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter() -> EnergyMeter {
        EnergyMeter::new(PowerParams::ddr3_1600_x8(), TimingParams::ddr3_1600())
    }

    #[test]
    fn activation_energy_is_positive() {
        let mut m = meter();
        m.on_activate();
        let e = m.breakdown();
        assert!(e.activation_nj > 0.0, "{:?}", e);
        assert_eq!(e.total_nj(), e.activation_nj);
    }

    #[test]
    fn read_and_write_include_io() {
        let mut m = meter();
        m.on_read(64);
        let r = m.breakdown();
        assert!(r.read_nj > 0.0);
        assert!((r.io_nj - 6.0 * 512.0 / 1000.0).abs() < 1e-9);
        let mut m = meter();
        m.on_write(64);
        assert!(m.breakdown().write_nj > 0.0);
    }

    #[test]
    fn background_active_exceeds_precharged() {
        let mut a = meter();
        a.on_elapsed(1000, true);
        let mut p = meter();
        p.on_elapsed(1000, false);
        assert!(a.breakdown().background_nj > p.breakdown().background_nj);
        assert_eq!(a.standby_cycles(), (1000, 0));
        assert_eq!(p.standby_cycles(), (0, 1000));
    }

    #[test]
    fn refresh_energy_scales_with_trfc() {
        let mut m = meter();
        m.on_refresh();
        assert!(m.breakdown().refresh_nj > 0.0);
    }

    #[test]
    fn energy_magnitudes_are_physical() {
        // An activate on an 8-chip DDR3 rank is on the order of
        // tens of nanojoules; a read burst a few nJ.
        let mut m = meter();
        m.on_activate();
        let act = m.breakdown().activation_nj;
        assert!(act > 1.0 && act < 100.0, "activation {act} nJ");
        let mut m = meter();
        m.on_read(64);
        let rd = m.breakdown().read_nj + m.breakdown().io_nj;
        assert!(rd > 0.5 && rd < 50.0, "read {rd} nJ");
    }

    #[test]
    fn powerdown_saves_background_energy() {
        let mut idle = meter();
        idle.on_idle_gap(10_000);
        let mut standby = meter();
        standby.on_elapsed(10_000, false);
        assert!(
            idle.breakdown().background_nj < 0.5 * standby.breakdown().background_nj,
            "power-down must cut idle energy substantially"
        );
        assert!(idle.powerdown_cycles() > 9_000);
        // Short gaps never enter power-down.
        let mut short = meter();
        short.on_idle_gap(20);
        assert_eq!(short.powerdown_cycles(), 0);
    }

    #[test]
    fn breakdown_merge_sums_every_component() {
        let mut m = meter();
        m.on_activate();
        m.on_read(64);
        let a = m.breakdown();
        let mut n = meter();
        n.on_write(64);
        n.on_refresh();
        n.on_elapsed(100, false);
        let b = n.breakdown();
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.activation_nj, a.activation_nj + b.activation_nj);
        assert_eq!(merged.read_nj, a.read_nj + b.read_nj);
        assert_eq!(merged.write_nj, a.write_nj + b.write_nj);
        assert_eq!(merged.refresh_nj, a.refresh_nj + b.refresh_nj);
        assert_eq!(merged.background_nj, a.background_nj + b.background_nj);
        assert_eq!(merged.io_nj, a.io_nj + b.io_nj);
        // Merging the default is the identity.
        let before = merged;
        merged.merge(&EnergyBreakdown::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn totals_sum_components() {
        let mut m = meter();
        m.on_activate();
        m.on_read(64);
        m.on_write(64);
        m.on_refresh();
        m.on_elapsed(100, true);
        let b = m.breakdown();
        let sum =
            b.activation_nj + b.read_nj + b.write_nj + b.refresh_nj + b.background_nj + b.io_nj;
        assert!((b.total_nj() - sum).abs() < 1e-12);
        assert!((b.total_mj() - sum * 1e-6).abs() < 1e-18);
    }
}
