//! DDR timing parameters.
//!
//! All values are in memory-controller clock cycles (the DDR command
//! clock; 800 MHz / tCK = 1.25 ns for DDR3-1600). The evaluated system
//! (paper Table 1) uses DDR3-1600 with one channel, one rank and eight
//! banks; [`TimingPack`] names the pluggable parameter sets reachable
//! from the CLI (`--timing`), with the paper's DDR3 pack as the
//! default and a DDR4-2400-shaped pack for forward-looking sweeps.

/// A memory-clock cycle count.
pub type Cycles = u64;

/// JEDEC-style timing constraints for a DDR3 device, in command-clock
/// cycles.
///
/// The preset [`TimingParams::ddr3_1600`] corresponds to an 11-11-11
/// DDR3-1600 part (2 Gb x8), the configuration of paper Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingParams {
    /// Clock period in picoseconds (1250 for DDR3-1600).
    pub tck_ps: u64,
    /// CAS (read) latency: READ to first data.
    pub cl: Cycles,
    /// CAS write latency: WRITE to first data.
    pub cwl: Cycles,
    /// ACTIVATE to internal READ/WRITE delay.
    pub rcd: Cycles,
    /// PRECHARGE to ACTIVATE delay.
    pub rp: Cycles,
    /// ACTIVATE to PRECHARGE minimum.
    pub ras: Cycles,
    /// ACTIVATE to ACTIVATE (same bank): `ras + rp`.
    pub rc: Cycles,
    /// Data burst duration on the bus (BL8 on a DDR bus = 4 cycles).
    pub burst: Cycles,
    /// Column-command to column-command minimum spacing.
    pub ccd: Cycles,
    /// READ to PRECHARGE minimum.
    pub rtp: Cycles,
    /// End of write burst to READ (write-to-read turnaround).
    pub wtr: Cycles,
    /// End of write burst to PRECHARGE (write recovery).
    pub wr: Cycles,
    /// ACTIVATE to ACTIVATE across banks of a rank.
    pub rrd: Cycles,
    /// Four-activate window: at most 4 ACTs per rank in this window.
    pub faw: Cycles,
    /// REFRESH command duration (all banks busy).
    pub rfc: Cycles,
    /// Average refresh interval (one REFRESH every `refi`).
    pub refi: Cycles,
    /// Read-to-write bus turnaround gap.
    pub rtw: Cycles,
    /// Rank-to-rank data-bus turnaround (bursts from different ranks).
    pub rtrs: Cycles,
}

impl TimingParams {
    /// DDR3-1600 (11-11-11), 2 Gb x8 devices — the Table 1 memory system.
    pub fn ddr3_1600() -> Self {
        TimingParams {
            tck_ps: 1250,
            cl: 11,
            cwl: 8,
            rcd: 11,
            rp: 11,
            ras: 28,
            rc: 39,
            burst: 4,
            ccd: 4,
            rtp: 6,
            wtr: 6,
            wr: 12,
            rrd: 5,
            faw: 24,
            rfc: 128,   // 160 ns at 800 MHz (2 Gb device)
            refi: 6240, // 7.8 us at 800 MHz
            rtw: 2,
            rtrs: 2,
        }
    }

    /// DDR4-2400 (17-17-17), 8 Gb x8 devices — a DDR4-shaped pack for
    /// scaling studies beyond the paper's testbed. The command clock
    /// runs at 1200 MHz (tCK = 833 ps), so absolute latencies are in
    /// the same ballpark as DDR3-1600 while bandwidth is 1.5×.
    pub fn ddr4_2400() -> Self {
        TimingParams {
            tck_ps: 833,
            cl: 17,
            cwl: 12,
            rcd: 17,
            rp: 17,
            ras: 39,
            rc: 56,
            burst: 4,
            ccd: 6,
            rtp: 9,
            wtr: 9,
            wr: 18,
            rrd: 6,
            faw: 26,
            rfc: 420,   // 350 ns at 1200 MHz (8 Gb device)
            refi: 9360, // 7.8 us at 1200 MHz
            rtw: 2,
            rtrs: 2,
        }
    }

    /// Converts a cycle count to nanoseconds.
    // gsdram-lint: allow-block(D5) report-axis unit conversion; never feeds simulated timing
    pub fn cycles_to_ns(&self, cycles: Cycles) -> f64 {
        cycles as f64 * self.tck_ps as f64 / 1000.0
    }

    /// Row-hit read latency: READ issue to last data beat.
    pub fn row_hit_read(&self) -> Cycles {
        self.cl + self.burst
    }

    /// Row-miss (closed-row) read latency: ACT + RCD + CL + burst.
    pub fn row_miss_read(&self) -> Cycles {
        self.rcd + self.cl + self.burst
    }

    /// Row-conflict read latency: PRE + RP + ACT path + read.
    pub fn row_conflict_read(&self) -> Cycles {
        self.rp + self.rcd + self.cl + self.burst
    }

    /// Validates internal consistency of the parameter set.
    pub fn validate(&self) -> Result<(), String> {
        if self.rc < self.ras + self.rp {
            return Err(format!(
                "tRC {} < tRAS {} + tRP {}",
                self.rc, self.ras, self.rp
            ));
        }
        if self.refi <= self.rfc {
            return Err("tREFI must exceed tRFC".to_string());
        }
        if self.burst == 0 || self.cl == 0 {
            return Err("burst and CL must be nonzero".to_string());
        }
        Ok(())
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::ddr3_1600()
    }
}

/// A named, pluggable timing parameter set selectable via `--timing`.
///
/// A pack bundles the JEDEC constraint table with the CPU-to-memory
/// clock ratio it implies, so swapping packs re-times the whole
/// machine consistently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingPack {
    /// The paper's Table 1 memory: DDR3-1600 (11-11-11), 800 MHz
    /// command clock.
    #[default]
    Ddr3_1600,
    /// A DDR4-2400-shaped part (17-17-17), 1200 MHz command clock.
    Ddr4_2400,
}

impl TimingPack {
    /// Every pack with its CLI label and a one-line note, in listing
    /// order.
    pub const VARIANTS: [(TimingPack, &'static str, &'static str); 2] = [
        (
            TimingPack::Ddr3_1600,
            "ddr3-1600",
            "paper-2015 baseline (Table 1, 11-11-11)",
        ),
        (
            TimingPack::Ddr4_2400,
            "ddr4-2400",
            "DDR4-shaped pack (17-17-17)",
        ),
    ];

    /// Parses a pack name as accepted by the `--timing` flag
    /// (`paper-2015` is an alias for the DDR3 baseline).
    pub fn parse(s: &str) -> Option<TimingPack> {
        match s {
            "ddr3-1600" | "ddr3" | "paper-2015" => Some(TimingPack::Ddr3_1600),
            "ddr4-2400" | "ddr4" => Some(TimingPack::Ddr4_2400),
            _ => None,
        }
    }

    /// Canonical label, stable across runs (used in run ids and the
    /// machine description line).
    pub fn label(&self) -> &'static str {
        match self {
            TimingPack::Ddr3_1600 => "ddr3-1600",
            TimingPack::Ddr4_2400 => "ddr4-2400",
        }
    }

    /// The constraint table for this pack.
    pub fn params(&self) -> TimingParams {
        match self {
            TimingPack::Ddr3_1600 => TimingParams::ddr3_1600(),
            TimingPack::Ddr4_2400 => TimingParams::ddr4_2400(),
        }
    }

    /// CPU cycles per memory-command cycle for a 4 GHz core: 5 for the
    /// 800 MHz DDR3 clock (the paper's ratio), 3 for the 1200 MHz DDR4
    /// clock (3.33 rounded down — the simulator keeps integer ratios).
    pub fn cpu_per_mem(&self) -> u64 {
        match self {
            TimingPack::Ddr3_1600 => 5,
            TimingPack::Ddr4_2400 => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_1600_is_consistent() {
        let t = TimingParams::ddr3_1600();
        t.validate().unwrap();
        assert_eq!(t.rc, t.ras + t.rp);
    }

    #[test]
    fn latency_helpers_order() {
        let t = TimingParams::ddr3_1600();
        assert!(t.row_hit_read() < t.row_miss_read());
        assert!(t.row_miss_read() < t.row_conflict_read());
        assert_eq!(t.row_hit_read(), 15);
        assert_eq!(t.row_conflict_read(), 11 + 11 + 11 + 4);
    }

    #[test]
    fn cycle_conversion() {
        let t = TimingParams::ddr3_1600();
        assert!((t.cycles_to_ns(8) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ddr4_2400_is_consistent() {
        let t = TimingParams::ddr4_2400();
        t.validate().unwrap();
        assert_eq!(t.rc, t.ras + t.rp);
        // Faster clock: same-ballpark absolute latency, higher cycle
        // counts than DDR3.
        assert!(t.cl > TimingParams::ddr3_1600().cl);
        assert!(t.tck_ps < TimingParams::ddr3_1600().tck_ps);
    }

    #[test]
    fn timing_pack_parse_labels() {
        for (p, label, _) in TimingPack::VARIANTS {
            assert_eq!(TimingPack::parse(label), Some(p));
            assert_eq!(p.label(), label);
            p.params().validate().unwrap();
            assert!(p.cpu_per_mem() > 0);
        }
        assert_eq!(TimingPack::parse("paper-2015"), Some(TimingPack::Ddr3_1600));
        assert_eq!(TimingPack::parse("nonsense"), None);
        assert_eq!(TimingPack::default(), TimingPack::Ddr3_1600);
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut t = TimingParams::ddr3_1600();
        t.rc = 10;
        assert!(t.validate().is_err());
        let mut t = TimingParams::ddr3_1600();
        t.refi = 10;
        assert!(t.validate().is_err());
        let mut t = TimingParams::ddr3_1600();
        t.burst = 0;
        assert!(t.validate().is_err());
    }
}
