//! Property tests for the XOR-matrix address-map pipeline: every
//! configuration of interleave × channel count × rank count × stage
//! preset must be a bijection between line addresses and DRAM
//! coordinates, with `compose` the exact inverse of `decompose` —
//! and a controller pair fed through a 2-channel map must observe
//! identical state whether time is leapt or stepped.
//!
//! Small line spaces are checked exhaustively; a large sparse space is
//! checked with a deterministic PRNG ([`gsdram_core::rng::SplitMix`])
//! so the workspace stays dependency-free and failures reproduce
//! bit-for-bit.

use std::collections::BTreeSet;

use gsdram_core::port::EventHub;
use gsdram_core::rng::SplitMix;
use gsdram_core::PatternId;
use gsdram_dram::controller::{AccessKind, ControllerConfig, MemController, MemRequest};
use gsdram_dram::mapping::{AddressMap, Interleave, MapHash, XorStage};

/// The geometry sweep ISSUE 10 pins: channels × ranks ∈ {1,2,4} each,
/// both interleaves, every XOR-stage preset, over a deliberately small
/// geometry (16 lines per row, 8 banks, so exhaustive sweeps stay
/// instant).
fn all_maps() -> Vec<AddressMap> {
    let mut v = Vec::new();
    for interleave in [Interleave::ColumnFirst, Interleave::BankFirst] {
        for channels in [1u64, 2, 4] {
            for ranks in [1u64, 2, 4] {
                for (hash, _, _) in MapHash::VARIANTS {
                    v.push(
                        AddressMap::with_shape(64, 16, 8, ranks, channels, interleave)
                            .with_hash(hash),
                    );
                }
            }
        }
    }
    v
}

fn describe(map: &AddressMap) -> String {
    format!("{map:?}")
}

/// decompose∘compose is the identity over an exhaustive window of line
/// addresses, and the resulting coordinates never collide — the map is
/// a bijection line ↔ (channel, rank, bank, row, col) for every
/// channels × ranks × stage combination.
#[test]
fn exhaustive_round_trip_and_bijectivity() {
    // 16 cols × 8 banks × 4 ranks × 4 channels × 4 rows = 8192 lines
    // covers several full rows of the largest shape.
    const LINES: u64 = 8192;
    for map in all_maps() {
        let mut seen = BTreeSet::new();
        for line in 0..LINES {
            let addr = line * map.line_bytes();
            let loc = map.decompose(addr);
            assert_eq!(
                map.compose(loc),
                addr,
                "{}: compose∘decompose at line {line}",
                describe(&map)
            );
            assert!(
                seen.insert((loc.channel, loc.rank, loc.bank, loc.row.0, loc.col.0)),
                "{}: line {line} collides at {loc:?}",
                describe(&map)
            );
        }
        assert_eq!(seen.len() as u64, LINES);
    }
}

/// Interior byte addresses decompose to the same location as the
/// line's first byte, and composing returns that first byte.
#[test]
fn interior_bytes_round_trip_to_line_base() {
    for map in all_maps() {
        for line in [0u64, 1, 17, 255, 1023] {
            let base = line * map.line_bytes();
            for off in [1u64, 7, 63] {
                let loc = map.decompose(base + off);
                assert_eq!(loc, map.decompose(base), "{}", describe(&map));
                assert_eq!(map.compose(loc), base, "{}", describe(&map));
            }
        }
    }
}

/// Each preset stage only permutes its own coordinate: every other
/// coordinate is identical to the direct map's.
#[test]
fn each_stage_permutes_only_its_coordinate() {
    for interleave in [Interleave::ColumnFirst, Interleave::BankFirst] {
        let direct = AddressMap::with_shape(64, 16, 8, 4, 4, interleave);
        for line in 0..16384u64 {
            let addr = line * 64;
            let d = direct.decompose(addr);
            let b = direct.with_hash(MapHash::XorBank).decompose(addr);
            assert_eq!(
                (d.channel, d.rank, d.row, d.col),
                (b.channel, b.rank, b.row, b.col)
            );
            let r = direct.with_hash(MapHash::XorRank).decompose(addr);
            assert_eq!(
                (d.channel, d.bank, d.row, d.col),
                (r.channel, r.bank, r.row, r.col)
            );
            let c = direct.with_hash(MapHash::XorChannel).decompose(addr);
            assert_eq!(
                (d.rank, d.bank, d.row, d.col),
                (c.rank, c.bank, c.row, c.col)
            );
        }
    }
}

/// The bank stage is a per-row permutation: keys that saw every bank
/// under the direct map still see every bank hashed — never a
/// collision, never a partial set.
#[test]
fn xor_stage_is_a_per_row_bank_permutation() {
    for interleave in [Interleave::ColumnFirst, Interleave::BankFirst] {
        for ranks in [1u64, 2] {
            let direct = AddressMap::with_ranks(64, 16, 8, ranks, interleave);
            let hashed = direct.with_hash(MapHash::XorBank);
            let mut banks_by_key: std::collections::BTreeMap<_, BTreeSet<usize>> =
                Default::default();
            for line in 0..4096u64 {
                let addr = line * 64;
                let d = direct.decompose(addr);
                let h = hashed.decompose(addr);
                assert_eq!((d.rank, d.row, d.col), (h.rank, h.row, h.col));
                banks_by_key
                    .entry((h.rank, h.row.0, h.col.0))
                    .or_default()
                    .insert(h.bank);
            }
            // Keys that saw every bank under the direct map must still
            // see every bank hashed — a permutation, never a collision.
            for ((rank, row, col), banks) in banks_by_key {
                assert!(
                    banks.len() == 8 || banks.len() == 1,
                    "(r{rank} row{row} col{col}): partial bank set {banks:?}"
                );
            }
        }
    }
}

/// Arbitrary mask matrices — including the Sudoku-style fold that
/// reads every key bit — keep the map bijective: any XOR stage is an
/// involution on its coordinate, so `with_stages` never needs to
/// vet the matrices beyond the power-of-two counts.
#[test]
fn custom_stage_matrices_stay_bijective() {
    let stages = [
        XorStage::fold(3),
        XorStage::from_masks(3, &[0b1011, 0b100, 0b11_0001]),
        XorStage::shifted(3, 7),
    ];
    for bank_stage in stages {
        for channel_stage in [XorStage::identity(0), XorStage::fold(1)] {
            let map = AddressMap::with_shape(64, 16, 8, 2, 2, Interleave::ColumnFirst).with_stages(
                channel_stage,
                XorStage::fold(1),
                bank_stage,
            );
            let mut seen = BTreeSet::new();
            for line in 0..4096u64 {
                let addr = line * 64;
                let loc = map.decompose(addr);
                assert_eq!(map.compose(loc), addr, "{}", describe(&map));
                assert!(seen.insert((loc.channel, loc.rank, loc.bank, loc.row.0, loc.col.0)));
            }
        }
    }
}

/// Randomised round-trip over a large, sparse line space (beyond the
/// exhaustive window, including u32-row-sized addresses).
#[test]
fn randomized_round_trip_over_large_space() {
    let mut rng = SplitMix(0xD15EA5E);
    for map in all_maps() {
        for _ in 0..2048 {
            // Up to ~2^31 lines: rows stay within RowId's u32 space
            // for every shape above.
            let line = rng.next_u64() % (1 << 31);
            let addr = line * map.line_bytes();
            assert_eq!(
                map.compose(map.decompose(addr)),
                addr,
                "{}: line {line}",
                describe(&map)
            );
        }
    }
}

/// Table 1's map (the default machine) must stay direct-mapped: the
/// hash stages are opt-in, so frozen figure output cannot shift.
#[test]
fn table1_has_no_hash_stage() {
    let t = AddressMap::table1();
    assert_eq!(t, t.with_hash(MapHash::Direct));
    for line in 0..1024u64 {
        let addr = line * t.line_bytes();
        assert_eq!(t.compose(t.decompose(addr)), addr);
    }
}

/// A single-channel map decomposes identically to the pre-channel
/// mapping: adding the channel coordinate cannot move a byte of any
/// frozen single-channel figure.
#[test]
fn single_channel_shape_matches_legacy_map() {
    for interleave in [Interleave::ColumnFirst, Interleave::BankFirst] {
        for ranks in [1u64, 2, 4] {
            let wide = AddressMap::with_shape(64, 128, 8, ranks, 1, interleave);
            let legacy = AddressMap::with_ranks(64, 128, 8, ranks, interleave);
            let mut rng = SplitMix(0xC0FFEE);
            for _ in 0..2048 {
                let addr = (rng.next_u64() % (1 << 31)) * 64;
                let a = wide.decompose(addr);
                let b = legacy.decompose(addr);
                assert_eq!(a.channel, 0);
                assert_eq!(
                    (a.rank, a.bank, a.row, a.col),
                    (b.rank, b.bank, b.row, b.col)
                );
            }
        }
    }
}

type Observed = (Vec<(u64, u64)>, String, u64);

/// Runs a seeded request stream through a 2-channel controller pair —
/// requests scattered by a 2-channel map — advancing both controllers
/// through `observe`, either leaping straight to each observation
/// point or stepping through every intermediate next-event horizon.
fn run_pair(step_through_events: bool, reqs: &[(u64, bool, u64)], observe: &[u64]) -> Observed {
    let map = AddressMap::with_shape(64, 128, 8, 1, 2, Interleave::ColumnFirst)
        .with_hash(MapHash::XorBank);
    let mut ctls: Vec<MemController> = (0..2)
        .map(|ch| {
            let mut c = MemController::new(ControllerConfig::default());
            c.set_channel(ch);
            c
        })
        .collect();
    let mut events = EventHub::new();
    let mut done = Vec::new();
    let mut next = 0usize;
    for &t in observe {
        while next < reqs.len() && reqs[next].2 <= t {
            let (addr, is_write, at) = reqs[next];
            let loc = map.decompose(addr);
            ctls[loc.channel].enqueue(
                MemRequest {
                    id: next as u64,
                    loc,
                    pattern: PatternId((addr % 8) as u8),
                    kind: if is_write {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                },
                at,
            );
            next += 1;
        }
        for c in ctls.iter_mut() {
            if step_through_events {
                // Walk one next-event horizon at a time.
                while let Some(e) = c.next_event() {
                    if e >= t {
                        break;
                    }
                    c.advance_observed(e, &mut events);
                }
            }
            c.advance_observed(t, &mut events);
            c.take_completions_into(t, &mut done);
        }
    }
    let stats = format!("{:?} {:?}", ctls[0].stats(), ctls[1].stats());
    (
        done.iter().map(|c| (c.id, c.at)).collect(),
        stats,
        ctls[0].now().max(ctls[1].now()),
    )
}

/// Randomized leap ≡ step differential for a 2-channel controller
/// pair: landing directly on each observation point must observe the
/// same completions, statistics and clocks as stepping through every
/// intermediate next-event horizon on both channels.
#[test]
fn two_channel_pair_leap_equals_step() {
    let mut rng = SplitMix(0x5EED_2CE1);
    for case in 0..16 {
        let n = rng.range(10, 120) as usize;
        let mut arrival = 0u64;
        let reqs: Vec<(u64, bool, u64)> = (0..n)
            .map(|_| {
                arrival += rng.below(200);
                (rng.next_u64() % (1 << 26), rng.flip(), arrival)
            })
            .collect();
        let mut observe: Vec<u64> = (0..rng.range(4, 24))
            .map(|_| rng.below(arrival + 20_000))
            .collect();
        observe.sort_unstable();
        observe.push(arrival + 100_000);
        let leap = run_pair(false, &reqs, &observe);
        let step = run_pair(true, &reqs, &observe);
        assert_eq!(leap, step, "case {case}: leap and step worlds diverged");
    }
}
