//! Property tests for the composable address-map stages: every
//! configuration of interleave × rank count × bank hash must be a
//! bijection between line addresses and DRAM coordinates, with
//! `compose` the exact inverse of `decompose`.
//!
//! Small line spaces are checked exhaustively; a large sparse space is
//! checked with a deterministic PRNG ([`gsdram_core::rng::SplitMix`])
//! so the workspace stays dependency-free and failures reproduce
//! bit-for-bit.

use std::collections::BTreeSet;

use gsdram_core::rng::SplitMix;
use gsdram_dram::mapping::{AddressMap, BankHash, Interleave};

/// Every map shape the tests sweep: both interleaves, 1–2 ranks, both
/// bank-hash stages, over a deliberately small geometry (16 lines per
/// row, 8 banks, so exhaustive sweeps stay instant).
fn all_maps() -> Vec<AddressMap> {
    let mut v = Vec::new();
    for interleave in [Interleave::ColumnFirst, Interleave::BankFirst] {
        for ranks in [1u64, 2] {
            for hash in [BankHash::Direct, BankHash::XorRow] {
                v.push(AddressMap::with_ranks(64, 16, 8, ranks, interleave).with_bank_hash(hash));
            }
        }
    }
    v
}

fn describe(map: &AddressMap) -> String {
    format!("{map:?}")
}

/// decompose∘compose is the identity over an exhaustive window of line
/// addresses, and the resulting coordinates never collide — the map is
/// a bijection line ↔ (rank, bank, row, col).
#[test]
fn exhaustive_round_trip_and_bijectivity() {
    // 16 cols × 8 banks × 2 ranks × 8 rows = 2048 lines covers several
    // full rows of every shape.
    const LINES: u64 = 2048;
    for map in all_maps() {
        let mut seen = BTreeSet::new();
        for line in 0..LINES {
            let addr = line * map.line_bytes();
            let loc = map.decompose(addr);
            assert_eq!(
                map.compose(loc),
                addr,
                "{}: compose∘decompose at line {line}",
                describe(&map)
            );
            assert!(
                seen.insert((loc.rank, loc.bank, loc.row.0, loc.col.0)),
                "{}: lines {line} collides at {loc:?}",
                describe(&map)
            );
        }
        assert_eq!(seen.len() as u64, LINES);
    }
}

/// Interior byte addresses decompose to the same location as the
/// line's first byte, and composing returns that first byte.
#[test]
fn interior_bytes_round_trip_to_line_base() {
    for map in all_maps() {
        for line in [0u64, 1, 17, 255, 1023] {
            let base = line * map.line_bytes();
            for off in [1u64, 7, 63] {
                let loc = map.decompose(base + off);
                assert_eq!(loc, map.decompose(base), "{}", describe(&map));
                assert_eq!(map.compose(loc), base, "{}", describe(&map));
            }
        }
    }
}

/// The XOR stage only permutes banks: rank, row and column are
/// identical to the direct map's, and within any one row the hash is a
/// bank permutation.
#[test]
fn xor_stage_is_a_per_row_bank_permutation() {
    for interleave in [Interleave::ColumnFirst, Interleave::BankFirst] {
        for ranks in [1u64, 2] {
            let direct = AddressMap::with_ranks(64, 16, 8, ranks, interleave);
            let hashed = direct.with_bank_hash(BankHash::XorRow);
            let mut banks_by_key: std::collections::BTreeMap<_, BTreeSet<usize>> =
                Default::default();
            for line in 0..4096u64 {
                let addr = line * 64;
                let d = direct.decompose(addr);
                let h = hashed.decompose(addr);
                assert_eq!((d.rank, d.row, d.col), (h.rank, h.row, h.col));
                banks_by_key
                    .entry((h.rank, h.row.0, h.col.0))
                    .or_default()
                    .insert(h.bank);
            }
            // Keys that saw every bank under the direct map must still
            // see every bank hashed — a permutation, never a collision.
            for ((rank, row, col), banks) in banks_by_key {
                assert!(
                    banks.len() == 8 || banks.len() == 1,
                    "(r{rank} row{row} col{col}): partial bank set {banks:?}"
                );
            }
        }
    }
}

/// Randomised round-trip over a large, sparse line space (beyond the
/// exhaustive window, including u32-row-sized addresses).
#[test]
fn randomized_round_trip_over_large_space() {
    let mut rng = SplitMix(0xD15EA5E);
    for map in all_maps() {
        for _ in 0..4096 {
            // Up to ~2^31 lines: rows stay within RowId's u32 space
            // for every shape above.
            let line = rng.next_u64() % (1 << 31);
            let addr = line * map.line_bytes();
            assert_eq!(
                map.compose(map.decompose(addr)),
                addr,
                "{}: line {line}",
                describe(&map)
            );
        }
    }
}

/// Table 1's map (the default machine) must stay direct-mapped: the
/// hash stage is opt-in, so frozen figure output cannot shift.
#[test]
fn table1_has_no_hash_stage() {
    let t = AddressMap::table1();
    assert_eq!(t, t.with_bank_hash(BankHash::Direct));
    for line in 0..1024u64 {
        let addr = line * t.line_bytes();
        assert_eq!(t.compose(t.decompose(addr)), addr);
    }
}
