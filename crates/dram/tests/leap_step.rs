//! Leap ≡ step: differential property tests for the time-skip engine.
//!
//! The time-skip contract ([`gsdram_core::time`]) promises that leaping
//! a component's clock to its reported horizon observes exactly the
//! state a cycle-by-cycle walk would have produced. These tests check
//! the promise three ways: the RefreshTimer and WriteDrain engines in
//! isolation over SplitMix-seeded schedules, and the whole controller
//! by running identical request streams with the engine on and off and
//! comparing everything observable — completions, statistics, clock
//! and the full command trace.

use gsdram_core::port::EventHub;
use gsdram_core::rng::SplitMix;
use gsdram_core::PatternId;
use gsdram_dram::controller::{
    AccessKind, ControllerConfig, ControllerStats, MemController, MemRequest, RowPolicy,
    SchedPolicy,
};
use gsdram_dram::mapping::AddressMap;
use gsdram_dram::refresh::RefreshTimer;
use gsdram_dram::wdrain::WriteDrain;

/// The refresh schedule reached by leaping straight to `horizon()` is
/// the one a cycle-by-cycle scan of `due_by` produces, and the horizon
/// is exact: the timer is never due one cycle before it.
#[test]
fn refresh_timer_leap_matches_step() {
    let mut rng = SplitMix(0x5EED_0001);
    for case in 0..32 {
        let refi = rng.range(5, 400);
        let end = refi * rng.range(3, 40);

        let mut step = RefreshTimer::new(true, refi);
        let mut fired_step = Vec::new();
        for t in 0..end {
            if step.due_by(t) {
                fired_step.push(t);
                step.advance_period();
            }
        }

        let mut leap = RefreshTimer::new(true, refi);
        let mut fired_leap = Vec::new();
        while let Some(due) = leap.horizon() {
            if due >= end {
                break;
            }
            assert!(!leap.due_by(due - 1), "case {case}: due before the horizon");
            assert!(leap.due_by(due), "case {case}: not due at the horizon");
            fired_leap.push(due);
            leap.advance_period();
        }

        assert_eq!(fired_step, fired_leap, "case {case}");
        assert_eq!(step.next_due(), leap.next_due(), "case {case}");
    }

    assert_eq!(
        RefreshTimer::new(false, 100).horizon(),
        None,
        "a disabled timer must report an empty horizon"
    );
}

/// Re-evaluating the drain hysteresis every cycle of a dwell emits the
/// same edge sequence as evaluating it once per depth change — the
/// deferral the controller's leap path relies on (queue depth only
/// changes at enqueue/issue, which invalidate the horizon).
#[test]
fn write_drain_leap_matches_step() {
    let mut rng = SplitMix(0x5EED_0002);
    for case in 0..64 {
        let high = rng.range(2, 12) as usize;
        let low = rng.below(high as u64) as usize;
        let mut depth = 0usize;
        let schedule: Vec<(usize, u64)> = (0..rng.range(10, 60))
            .map(|_| {
                depth = if rng.flip() {
                    depth + 1
                } else {
                    depth.saturating_sub(1)
                };
                (depth, rng.range(1, 8))
            })
            .collect();

        let mut step = WriteDrain::new(high, low);
        let mut edges_step = Vec::new();
        for (i, &(d, dwell)) in schedule.iter().enumerate() {
            for _ in 0..dwell {
                if let Some(e) = step.update(d) {
                    edges_step.push((i, e));
                }
            }
        }

        let mut leap = WriteDrain::new(high, low);
        let mut edges_leap = Vec::new();
        for (i, &(d, _)) in schedule.iter().enumerate() {
            if let Some(e) = leap.update(d) {
                edges_leap.push((i, e));
            }
        }

        assert_eq!(edges_step, edges_leap, "case {case}");
        assert_eq!(step.is_draining(), leap.is_draining(), "case {case}");
    }
}

type Observed = (Vec<(u64, u64)>, ControllerStats, u64, String);

/// Runs `reqs` through a controller with the time-skip engine on or
/// off, advancing through the same observation schedule, and returns
/// everything an outside observer can see.
fn run_with(
    time_skip: bool,
    reqs: &[(u64, bool, u64)],
    cfg: &ControllerConfig,
    observe: &[u64],
) -> Observed {
    let mut mc = MemController::new(cfg.clone());
    mc.set_time_skip(time_skip);
    mc.enable_trace();
    let map = AddressMap::table1();
    let mut events = EventHub::new();
    let mut done = Vec::new();
    let mut next = 0usize;
    let enq = |mc: &mut MemController, i: usize| {
        let (addr, is_write, at) = reqs[i];
        mc.enqueue(
            MemRequest {
                id: i as u64,
                loc: map.decompose(addr),
                pattern: PatternId((addr % 8) as u8),
                kind: if is_write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            },
            at,
        );
    };
    for &t in observe {
        while next < reqs.len() && reqs[next].2 <= t {
            enq(&mut mc, next);
            next += 1;
        }
        mc.advance_observed(t, &mut events);
        mc.take_completions_into(t, &mut done);
    }
    while next < reqs.len() {
        enq(&mut mc, next);
        next += 1;
    }
    let end = mc.drain();
    mc.take_completions_into(end, &mut done);
    (
        done.iter().map(|c| (c.id, c.at)).collect(),
        mc.stats(),
        mc.now(),
        format!("{:?}", mc.trace()),
    )
}

/// Two-run diff: identical seeded request streams and observation
/// schedules, time-skip engine on vs off, across both schedulers, both
/// row policies, 1–2 ranks, refresh on/off. Every observable —
/// completion schedule, statistics, final clock, command trace — must
/// match exactly.
#[test]
fn controller_leap_equals_step_two_run_diff() {
    let mut rng = SplitMix(0x5EED_0003);
    for case in 0..24 {
        let n = rng.range(1, 80) as usize;
        let mut arrival = 0u64;
        let reqs: Vec<(u64, bool, u64)> = (0..n)
            .map(|_| {
                arrival += rng.below(150);
                (rng.next_u64() % (1 << 26), rng.flip(), arrival)
            })
            .collect();
        let mut observe: Vec<u64> = (0..rng.range(5, 40))
            .map(|_| rng.below(arrival + 2000))
            .collect();
        observe.sort_unstable();
        let cfg = ControllerConfig {
            policy: if rng.flip() {
                SchedPolicy::FrFcfs
            } else {
                SchedPolicy::Fcfs
            },
            row_policy: if rng.flip() {
                RowPolicy::Closed
            } else {
                RowPolicy::Open
            },
            refresh: rng.flip(),
            ranks: if rng.flip() { 2 } else { 1 },
            ..ControllerConfig::default()
        };
        let leap = run_with(true, &reqs, &cfg, &observe);
        let step = run_with(false, &reqs, &cfg, &observe);
        assert_eq!(leap, step, "case {case}: leap and step worlds diverged");
    }
}
