//! Property-style tests: the controller never emits a command sequence
//! that violates DDR3 timing, under arbitrary request streams.
//!
//! The checker below re-derives the JEDEC rules independently of the
//! `Rank` state machine, so a bug in the controller's bookkeeping
//! cannot hide itself. Cases come from a deterministic PRNG
//! ([`gsdram_core::rng::SplitMix`]) instead of `proptest`, keeping the
//! workspace dependency-free and failures bit-reproducible.

use gsdram_core::rng::SplitMix;
use gsdram_core::PatternId;
use gsdram_dram::command::TimedCommand;
use gsdram_dram::controller::{
    AccessKind, ControllerConfig, MemController, MemRequest, RowPolicy, SchedPolicy,
};
use gsdram_dram::mapping::AddressMap;
use gsdram_dram::timing::TimingParams;
use gsdram_dram::verify::check_trace;

fn run_stream(
    reqs: Vec<(u64, bool, u64)>,
    policy: SchedPolicy,
    refresh: bool,
    ranks: usize,
    row_policy: RowPolicy,
) -> (Vec<TimedCommand>, usize) {
    let mut mc = MemController::new(ControllerConfig {
        policy,
        refresh,
        ranks,
        row_policy,
        ..ControllerConfig::default()
    });
    mc.enable_trace();
    let map = AddressMap::with_ranks(
        64,
        128,
        8,
        ranks as u64,
        gsdram_dram::mapping::Interleave::ColumnFirst,
    );
    let n = reqs.len();
    for (i, (addr, is_write, gap)) in reqs.into_iter().enumerate() {
        let at = mc.now() + gap;
        mc.enqueue(
            MemRequest {
                id: i as u64,
                loc: map.decompose(addr % (1 << 26)),
                pattern: PatternId((addr % 8) as u8),
                kind: if is_write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            },
            at,
        );
    }
    let end = mc.drain();
    let done = mc.take_completions(end);
    (mc.trace().unwrap().to_vec(), done.len().min(n))
}

/// Every command trace the controller produces passes the independent
/// JEDEC replay checker, and every request completes — across both
/// schedulers, both row policies, 1–2 ranks, refresh on/off.
#[test]
fn traces_obey_ddr3_timing() {
    let mut rng = SplitMix(0xD3A1);
    for case in 0..64 {
        let n = rng.range(1, 120) as usize;
        let reqs: Vec<(u64, bool, u64)> = (0..n)
            .map(|_| (rng.next_u64(), rng.flip(), rng.below(200)))
            .collect();
        let policy = if rng.flip() {
            SchedPolicy::FrFcfs
        } else {
            SchedPolicy::Fcfs
        };
        let row_policy = if rng.flip() {
            RowPolicy::Closed
        } else {
            RowPolicy::Open
        };
        let refresh = rng.flip();
        let ranks = if rng.flip() { 2 } else { 1 };
        let (trace, completed) = run_stream(reqs, policy, refresh, ranks, row_policy);
        assert_eq!(completed, n, "case {case}: all requests must complete");
        if let Err(e) = check_trace(&trace, &TimingParams::ddr3_1600(), 8) {
            panic!("case {case}: timing violation: {e}");
        }
    }
}

/// Read latency never falls below the physical minimum (CL + burst).
#[test]
fn latencies_are_physical() {
    let mut rng = SplitMix(0xD3A2);
    for _ in 0..64 {
        let n = rng.range(1, 60) as usize;
        let addrs: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let map = AddressMap::table1();
        let mut mc = MemController::new(ControllerConfig {
            refresh: false,
            ..ControllerConfig::default()
        });
        for (i, a) in addrs.iter().enumerate() {
            mc.enqueue(
                MemRequest {
                    id: i as u64,
                    loc: map.decompose(a % (1 << 26)),
                    pattern: PatternId(0),
                    kind: AccessKind::Read,
                },
                0,
            );
        }
        let end = mc.drain();
        let done = mc.take_completions(end);
        let t = TimingParams::ddr3_1600();
        for c in &done {
            assert!(c.at >= t.cl + t.burst);
        }
    }
}
