//! Property tests: the controller never emits a command sequence that
//! violates DDR3 timing, under arbitrary request streams.
//!
//! The checker below re-derives the JEDEC rules independently of the
//! `Rank` state machine, so a bug in the controller's bookkeeping cannot
//! hide itself.

use gsdram_core::PatternId;
use gsdram_dram::command::TimedCommand;
use gsdram_dram::verify::check_trace;
use gsdram_dram::controller::{
    AccessKind, ControllerConfig, MemController, MemRequest, RowPolicy, SchedPolicy,
};
use gsdram_dram::mapping::AddressMap;
use gsdram_dram::timing::TimingParams;
use proptest::prelude::*;

fn run_stream(
    reqs: Vec<(u64, bool, u64)>,
    policy: SchedPolicy,
    refresh: bool,
    ranks: usize,
    row_policy: RowPolicy,
) -> (Vec<TimedCommand>, usize) {
    let mut mc = MemController::new(ControllerConfig {
        policy,
        refresh,
        ranks,
        row_policy,
        ..ControllerConfig::default()
    });
    mc.enable_trace();
    let map = AddressMap::with_ranks(
        64,
        128,
        8,
        ranks as u64,
        gsdram_dram::mapping::Interleave::ColumnFirst,
    );
    let n = reqs.len();
    for (i, (addr, is_write, gap)) in reqs.into_iter().enumerate() {
        let at = mc.now() + gap;
        mc.enqueue(
            MemRequest {
                id: i as u64,
                loc: map.decompose(addr % (1 << 26)),
                pattern: PatternId((addr % 8) as u8),
                kind: if is_write { AccessKind::Write } else { AccessKind::Read },
            },
            at,
        );
    }
    let end = mc.drain();
    let done = mc.take_completions(end);
    (mc.trace().unwrap().to_vec(), done.len().min(n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every command trace the controller produces passes the
    /// independent JEDEC replay checker, and every request completes.
    #[test]
    fn traces_obey_ddr3_timing(
        reqs in proptest::collection::vec((any::<u64>(), any::<bool>(), 0u64..200), 1..120),
        frfcfs in any::<bool>(),
        refresh in any::<bool>(),
        two_ranks in any::<bool>(),
        closed_rows in any::<bool>(),
    ) {
        let n = reqs.len();
        let policy = if frfcfs { SchedPolicy::FrFcfs } else { SchedPolicy::Fcfs };
        let row_policy = if closed_rows { RowPolicy::Closed } else { RowPolicy::Open };
        let (trace, completed) =
            run_stream(reqs, policy, refresh, if two_ranks { 2 } else { 1 }, row_policy);
        prop_assert_eq!(completed, n, "all requests must complete");
        check_trace(&trace, &TimingParams::ddr3_1600(), 8).map_err(|e| {
            TestCaseError::fail(format!("timing violation: {e}"))
        })?;
    }

    /// Read latency never falls below the physical minimum (CL + burst)
    /// and row hits are bounded by the conflict path plus queueing.
    #[test]
    fn latencies_are_physical(
        addrs in proptest::collection::vec(any::<u64>(), 1..60),
    ) {
        let map = AddressMap::table1();
        let mut mc = MemController::new(ControllerConfig { refresh: false, ..ControllerConfig::default() });
        for (i, a) in addrs.iter().enumerate() {
            mc.enqueue(MemRequest {
                id: i as u64,
                loc: map.decompose(a % (1 << 26)),
                pattern: PatternId(0),
                kind: AccessKind::Read,
            }, 0);
        }
        let end = mc.drain();
        let done = mc.take_completions(end);
        let t = TimingParams::ddr3_1600();
        for c in &done {
            prop_assert!(c.at >= t.cl + t.burst);
        }
    }
}
