//! The instruction-level interface between workloads and the machine:
//! `pattload`/`pattstore` (paper §4.2) plus plain compute batches.

use gsdram_core::PatternId;

/// One dynamic operation of a simulated program.
///
/// `Load`/`Store` with a non-zero pattern model the paper's
/// `pattload reg, addr, patt` / `pattstore reg, addr, patt`
/// instructions; with [`PatternId::DEFAULT`] they are ordinary loads and
/// stores. `Load16` is the 16-byte (xmm) variant the paper uses for SIMD
/// (§5: "gather with a specific pattern into either the rax register
/// (8 bytes) or the xmm0 register (16 bytes)").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// 8-byte load. `pc` identifies the static instruction (for the
    /// stride prefetcher); `addr` is the byte address.
    Load {
        /// Static instruction address.
        pc: u64,
        /// Byte address accessed.
        addr: u64,
        /// Access pattern.
        pattern: PatternId,
    },
    /// 16-byte SIMD load (two adjacent words of the — possibly
    /// gathered — cache line).
    Load16 {
        /// Static instruction address.
        pc: u64,
        /// Byte address accessed (16-byte aligned).
        addr: u64,
        /// Access pattern.
        pattern: PatternId,
    },
    /// 8-byte store of `value`.
    Store {
        /// Static instruction address.
        pc: u64,
        /// Byte address accessed.
        addr: u64,
        /// Access pattern.
        pattern: PatternId,
        /// Value written.
        value: u64,
    },
    /// `cycles` of non-memory work (ALU/branch/SIMD arithmetic),
    /// batched.
    Compute(u32),
}

/// A simulated program: a lazy stream of [`Op`]s plus hooks for
/// data-dependent behaviour and progress reporting.
pub trait Program {
    /// The next operation, or `None` when the program finishes. Programs
    /// may be endless (e.g. the HTAP transaction thread, which the
    /// machine stops when the analytics core completes).
    fn next_op(&mut self) -> Option<Op>;

    /// Called with the value produced by each completed `Load` (and the
    /// low word of each `Load16`), letting programs fold loaded data
    /// (e.g. the analytics sum).
    fn on_load_value(&mut self, _value: u64) {}

    /// Completed work units (e.g. transactions) — read by the harness
    /// for throughput metrics.
    fn progress(&self) -> u64 {
        0
    }

    /// A final checksum for functional verification (e.g. the computed
    /// column sum).
    fn result(&self) -> u64 {
        0
    }
}

/// A program built from a fixed op vector (testing convenience).
#[derive(Debug, Clone)]
pub struct ScriptedProgram {
    ops: std::vec::IntoIter<Op>,
    values: Vec<u64>,
    done_units: u64,
}

impl ScriptedProgram {
    /// A program that plays back `ops`.
    pub fn new(ops: Vec<Op>) -> Self {
        ScriptedProgram {
            ops: ops.into_iter(),
            values: Vec::new(),
            done_units: 0,
        }
    }

    /// Values observed by loads, in order.
    pub fn loaded_values(&self) -> &[u64] {
        &self.values
    }
}

impl Program for ScriptedProgram {
    fn next_op(&mut self) -> Option<Op> {
        let op = self.ops.next();
        if op.is_some() {
            self.done_units += 1;
        }
        op
    }

    fn on_load_value(&mut self, value: u64) {
        self.values.push(value);
    }

    fn progress(&self) -> u64 {
        self.done_units
    }

    fn result(&self) -> u64 {
        self.values.iter().fold(0u64, |a, b| a.wrapping_add(*b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_program_plays_back() {
        let mut p = ScriptedProgram::new(vec![
            Op::Compute(3),
            Op::Load {
                pc: 1,
                addr: 64,
                pattern: PatternId(0),
            },
        ]);
        assert_eq!(p.next_op(), Some(Op::Compute(3)));
        p.on_load_value(42);
        assert!(p.next_op().is_some());
        assert_eq!(p.next_op(), None);
        assert_eq!(p.progress(), 2);
        assert_eq!(p.result(), 42);
        assert_eq!(p.loaded_values(), &[42]);
    }
}
