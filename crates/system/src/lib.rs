//! # gsdram-system
//!
//! The end-to-end GS-DRAM system simulator (paper §4–§5): in-order cores
//! executing `pattload`/`pattstore` streams over pattern-tagged caches,
//! a stride prefetcher, an FR-FCFS DDR3-1600 controller and a functional
//! GS-DRAM(8,3,3) module — with CPU and DRAM energy accounting.
//!
//! * [`config`] — the Table 1 system parameters;
//! * [`page`] — `pattmalloc` and per-page pattern metadata (§4.3);
//! * [`ops`] — the program/op interface (§4.2);
//! * [`machine`] — the [`Machine`]: composition shell and public API;
//! * [`exec`] — the core scheduler and run loop;
//! * [`hier`] — L1s/L2/prefetchers and the demand access path;
//! * [`coherence`] — the §4.1 pattern-overlap coherence engine + DBI;
//! * [`bridge`] — memory controllers, the GS-DRAM module, delivery;
//! * [`report`] — end-of-run statistics assembly ([`RunReport`]);
//! * [`energy`] — the McPAT-substitute processor energy model;
//! * [`trace`] — memory-trace capture and replay.
//!
//! The machine performs timing *and* functional simulation; see
//! `docs/ARCHITECTURE.md` for how the components connect and how to
//! observe a run through [`Machine::attach_observer`].
//!
//! ```
//! use gsdram_system::config::SystemConfig;
//! use gsdram_system::machine::{Machine, StopWhen};
//! use gsdram_system::ops::{Op, Program, ScriptedProgram};
//! use gsdram_core::PatternId;
//!
//! let mut m = Machine::new(SystemConfig::table1(1, 1 << 20));
//! let base = m.pattmalloc(8 * 64, true, PatternId(7));
//! for t in 0..8 { m.poke(base + t * 64, t); } // field 0 of 8 tuples
//! let mut p = ScriptedProgram::new(
//!     (0..8).map(|k| Op::Load { pc: 1, addr: base + 8 * k, pattern: PatternId(7) }).collect(),
//! );
//! let report = {
//!     let mut programs: Vec<&mut dyn Program> = vec![&mut p];
//!     m.run(&mut programs, StopWhen::AllDone)
//! };
//! assert_eq!(report.dram.reads, 1); // one gather fetched all 8 fields
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bridge;
pub mod coherence;
pub mod config;
pub mod energy;
pub mod exec;
pub mod hier;
pub mod machine;
pub mod ops;
pub mod page;
pub mod report;
pub mod trace;

pub use config::SystemConfig;
pub use machine::{Machine, RunReport, StopWhen};
pub use ops::{Op, Program};
