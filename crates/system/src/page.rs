//! `pattmalloc` and per-page pattern metadata (paper §4.3).
//!
//! The OS associates each virtual page with a *shuffle flag* and one
//! *alternate pattern ID*. Applications allocate pattern-capable memory
//! with `pattmalloc(size, SHUFFLE, pattern)`; any access to such a page
//! may use the zero pattern or the page's alternate pattern — the
//! restriction that keeps cache coherence simple (§4.1).

use core::fmt;
use gsdram_core::PatternId;

/// Metadata attached to a page-table entry (§4.4: "each page table entry
/// and TLB entry stores the shuffle flag and the alternate pattern ID").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageInfo {
    /// Whether the memory controller shuffles lines of this page (§3.2).
    pub shuffle: bool,
    /// The one non-zero pattern this page may be accessed with.
    pub alt_pattern: PatternId,
}

impl PageInfo {
    /// Plain memory: no shuffling, only the default pattern.
    pub fn plain() -> Self {
        PageInfo {
            shuffle: false,
            alt_pattern: PatternId::DEFAULT,
        }
    }

    /// Whether `pattern` is legal on this page.
    pub fn allows(&self, pattern: PatternId) -> bool {
        pattern.is_default() || pattern == self.alt_pattern
    }
}

/// Error for accesses violating the two-patterns-per-page restriction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternNotAllowed {
    /// Offending address.
    pub addr: u64,
    /// Offending pattern.
    pub pattern: PatternId,
}

impl fmt::Display for PatternNotAllowed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pattern {} not allowed at address {:#x} (page allows only the default and its alternate pattern)",
            self.pattern.0, self.addr
        )
    }
}

impl std::error::Error for PatternNotAllowed {}

/// A bump allocator over the simulated physical memory that implements
/// `pattmalloc`: every allocation is row-aligned and its pages carry the
/// requested shuffle flag and alternate pattern.
///
/// ```
/// use gsdram_system::page::PageTable;
/// use gsdram_core::PatternId;
/// let mut pt = PageTable::new(1 << 20, 8192);
/// let base = pt.pattmalloc(64 * 64, true, PatternId(7));
/// assert!(pt.check(base, PatternId(7)).is_ok());   // alternate pattern
/// assert!(pt.check(base, PatternId(0)).is_ok());   // default pattern
/// assert!(pt.check(base, PatternId(3)).is_err());  // anything else faults
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    page_bytes: u64,
    row_bytes: u64,
    capacity: u64,
    next_free: u64,
    pages: Vec<PageInfo>,
}

impl PageTable {
    /// A page table over `capacity` bytes with 4 KB pages; allocations
    /// align to `row_bytes` (so column 0 of a row is element 0 of the
    /// allocation).
    pub fn new(capacity: u64, row_bytes: u64) -> Self {
        let page_bytes = 4096;
        let pages = (capacity / page_bytes) as usize;
        PageTable {
            page_bytes,
            row_bytes,
            capacity,
            next_free: 0,
            pages: vec![PageInfo::plain(); pages],
        }
    }

    /// Plain `malloc`: row-aligned allocation with default-pattern-only
    /// pages.
    ///
    /// # Panics
    ///
    /// Panics if the simulated memory is exhausted.
    pub fn malloc(&mut self, bytes: u64) -> u64 {
        self.pattmalloc(bytes, false, PatternId::DEFAULT)
    }

    /// `pattmalloc(size, shuffle, pattern)` of §4.3.
    ///
    /// # Panics
    ///
    /// Panics if the simulated memory is exhausted.
    pub fn pattmalloc(&mut self, bytes: u64, shuffle: bool, pattern: PatternId) -> u64 {
        let base = self.next_free.div_ceil(self.row_bytes) * self.row_bytes;
        let end = base + bytes;
        assert!(
            end <= self.capacity,
            "simulated memory exhausted ({end} > {})",
            self.capacity
        );
        self.next_free = end;
        let info = PageInfo {
            shuffle,
            alt_pattern: pattern,
        };
        let first = (base / self.page_bytes) as usize;
        let last = (end.div_ceil(self.page_bytes) as usize).min(self.pages.len());
        for p in &mut self.pages[first..last] {
            *p = info;
        }
        base
    }

    /// Page metadata for `addr`.
    pub fn info(&self, addr: u64) -> PageInfo {
        let idx = (addr / self.page_bytes) as usize;
        self.pages.get(idx).copied().unwrap_or_else(PageInfo::plain)
    }

    /// Validates an access.
    ///
    /// # Errors
    ///
    /// Returns [`PatternNotAllowed`] when `pattern` is neither the
    /// default nor the page's alternate.
    pub fn check(&self, addr: u64, pattern: PatternId) -> Result<PageInfo, PatternNotAllowed> {
        let info = self.info(addr);
        if info.allows(pattern) {
            Ok(info)
        } else {
            Err(PatternNotAllowed { addr, pattern })
        }
    }

    /// Bytes allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattmalloc_sets_page_metadata() {
        let mut pt = PageTable::new(1 << 20, 8192);
        let base = pt.pattmalloc(100_000, true, PatternId(7));
        assert_eq!(base % 8192, 0);
        let info = pt.info(base + 50_000);
        assert!(info.shuffle);
        assert_eq!(info.alt_pattern, PatternId(7));
        assert!(pt.check(base, PatternId(7)).is_ok());
        assert!(pt.check(base, PatternId(0)).is_ok());
        let err = pt.check(base, PatternId(3)).unwrap_err();
        assert_eq!(err.pattern, PatternId(3));
        assert!(err.to_string().contains("not allowed"));
    }

    #[test]
    fn plain_malloc_rejects_nonzero_patterns() {
        let mut pt = PageTable::new(1 << 20, 8192);
        let base = pt.malloc(4096);
        assert!(pt.check(base, PatternId(0)).is_ok());
        assert!(pt.check(base, PatternId(1)).is_err());
    }

    #[test]
    fn allocations_are_disjoint_and_row_aligned() {
        let mut pt = PageTable::new(1 << 20, 8192);
        let a = pt.pattmalloc(100, true, PatternId(7));
        let b = pt.pattmalloc(100, false, PatternId(0));
        assert!(b >= a + 100);
        assert_eq!(b % 8192, 0);
        // Page metadata of the two allocations differs.
        assert!(pt.info(a).shuffle);
        assert!(!pt.info(b).shuffle);
        assert!(pt.allocated() >= 8192 + 100);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut pt = PageTable::new(16384, 8192);
        pt.malloc(16384);
        pt.malloc(1);
    }

    #[test]
    fn page_info_allows() {
        let p = PageInfo {
            shuffle: true,
            alt_pattern: PatternId(7),
        };
        assert!(p.allows(PatternId(0)));
        assert!(p.allows(PatternId(7)));
        assert!(!p.allows(PatternId(1)));
        assert!(PageInfo::plain().allows(PatternId(0)));
    }
}
