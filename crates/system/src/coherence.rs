//! The §4.1 coherence engine: pattern-overlap tracking plus the
//! Dirty-Block-Index fast path.
//!
//! Cache lines fetched with different pattern IDs may partially overlap
//! in memory. The paper keeps them coherent with two rules, both
//! implemented here against the [cache hierarchy](crate::hier):
//!
//! 1. **flush-before-fetch** — before a line is fetched from DRAM,
//!    dirty overlapping lines of the page's other pattern are flushed;
//! 2. **invalidate-on-store** — a store invalidates the (at most
//!    `chips`) overlapping other-pattern lines everywhere.
//!
//! The engine owns the [`DirtyBlockIndex`], a conservative per-(DRAM
//! row, pattern) dirty-line superset that answers the common
//! "no dirty overlap" case without touching the caches. Flushed lines
//! are appended to the caller's writeback list in flush order; the
//! machine forwards them to the [DRAM bridge](crate::bridge).

use gsdram_cache::cache::{EvictedLine, LineKey};
use gsdram_cache::dbi::DirtyBlockIndex;
use gsdram_cache::overlap::OverlapCalc;
use gsdram_core::port::{EventHub, SimEvent};
use gsdram_core::PatternId;

use crate::config::{GatherSupport, SystemConfig};
use crate::hier::CacheHier;
use crate::machine::Machine;
use crate::page::PageTable;

/// The §4.1 coherence engine. See the [module docs](self).
#[derive(Debug)]
pub struct CoherenceEngine {
    /// Overlap sets between pattern-tagged lines.
    pub(crate) overlap: OverlapCalc,
    /// Dirty-Block Index (§4.1): per-(DRAM row, pattern) dirty bitmaps,
    /// the fast path for the flush-before-fetch coherence check. Kept as
    /// a conservative superset of the caches' dirty lines; bits clear
    /// when data reaches the DRAM module.
    pub(crate) dbi: DirtyBlockIndex,
    gather: GatherSupport,
}

impl CoherenceEngine {
    pub(crate) fn new(cfg: &SystemConfig) -> Self {
        CoherenceEngine {
            overlap: OverlapCalc::new(cfg.gsdram.clone(), cfg.l2.line_bytes as u64, 128),
            dbi: DirtyBlockIndex::table1(),
            gather: cfg.gather,
        }
    }

    /// Which word-address semantics a line uses: under GS-DRAM the
    /// hardware shuffle/CTL path (page shuffle flag); under Impulse the
    /// controller gathers the application-level stride regardless of
    /// the (commodity, unshuffled) module layout.
    pub(crate) fn addr_semantics(&self, pages: &PageTable, key: LineKey) -> bool {
        let shuffled = pages.info(key.addr).shuffle;
        shuffled || (self.gather == GatherSupport::Impulse && !key.pattern.is_default())
    }

    /// A line's data reached the DRAM module: clear its DBI dirty bit.
    pub(crate) fn mark_clean(&mut self, key: LineKey) {
        self.dbi.mark_clean(key);
    }

    /// §4.1 rule 1: before fetching `key` from DRAM, flush dirty
    /// overlapping lines of the page's other pattern from all caches.
    /// Flushed lines are appended to `wb` in flush order.
    pub(crate) fn flush_overlaps_before_fetch(
        &mut self,
        pages: &PageTable,
        hier: &mut CacheHier,
        key: LineKey,
        wb: &mut Vec<EvictedLine>,
        events: &mut EventHub,
    ) {
        let info = pages.info(key.addr);
        // Coherence engages whenever the page supports an alternate
        // pattern — whether gathers come from the shuffle/CTL datapath
        // (GS-DRAM) or from controller-side assembly (Impulse).
        let sem = self.addr_semantics(
            pages,
            LineKey {
                pattern: info.alt_pattern,
                ..key
            },
        );
        if !sem || info.alt_pattern.is_default() {
            return;
        }
        let other = if key.pattern.is_default() {
            info.alt_pattern
        } else {
            PatternId::DEFAULT
        };
        // §4.1 fast path: one Dirty-Block-Index row lookup rules out the
        // common no-dirty-overlap case without touching the caches.
        if !self.dbi.row_has_dirty(key.addr, other) {
            return;
        }
        for okey in self.overlap.overlapping_lines(key, other, sem) {
            if !self.dbi.may_be_dirty(okey) {
                continue;
            }
            // Only *dirty* overlapping lines must reach DRAM before the
            // fetch; clean copies are consistent and may stay cached
            // (§4.1: "check if there are any dirty cache lines ... which
            // have a partial overlap with the cache line being fetched").
            // Flush order matters: an L2 dirty copy is always older than
            // an L1 dirty copy of the same line, so L2 goes first and a
            // flushed L1 line additionally drops any stale L2 copy.
            if hier.l2.is_dirty(okey) {
                // gsdram-lint: allow(D4) is_dirty(okey) above implies the line is resident
                let ev = hier.l2.invalidate(okey).expect("resident");
                events.emit(|| SimEvent::OverlapFlush {
                    addr: okey.addr,
                    pattern: okey.pattern,
                    store: false,
                });
                wb.push(ev);
            }
            let mut l1_was_dirty = false;
            for c in 0..hier.l1.len() {
                if hier.l1[c].is_dirty(okey) {
                    // gsdram-lint: allow(D4) is_dirty(okey) above implies the line is resident
                    let ev = hier.l1[c].invalidate(okey).expect("resident");
                    events.emit(|| SimEvent::OverlapFlush {
                        addr: okey.addr,
                        pattern: okey.pattern,
                        store: false,
                    });
                    wb.push(ev);
                    l1_was_dirty = true;
                }
            }
            if l1_was_dirty {
                hier.l2.invalidate(okey);
            }
        }
    }

    /// §4.1 rule 2: a store to `key` invalidates overlapping lines of
    /// the other pattern everywhere (at most `chips` lines — §4.4), plus
    /// same-key copies in other cores' L1s. Dirty casualties are
    /// appended to `wb` in invalidation order.
    pub(crate) fn invalidate_overlaps_on_store(
        &mut self,
        pages: &PageTable,
        hier: &mut CacheHier,
        core: usize,
        key: LineKey,
        wb: &mut Vec<EvictedLine>,
        events: &mut EventHub,
    ) {
        // Every store routes through here: record the dirtied line.
        self.dbi.mark_dirty(key);
        // Same-key copies in other L1s (read-exclusive upgrade).
        for c in 0..hier.l1.len() {
            if c != core {
                if let Some(ev) = hier.l1[c].invalidate(key) {
                    if ev.dirty {
                        // Should not happen (two dirty copies), but stay safe.
                        wb.push(ev);
                    }
                }
            }
        }
        let info = pages.info(key.addr);
        let sem = self.addr_semantics(
            pages,
            LineKey {
                pattern: info.alt_pattern,
                ..key
            },
        );
        if !sem || info.alt_pattern.is_default() {
            return;
        }
        let other = if key.pattern.is_default() {
            info.alt_pattern
        } else {
            PatternId::DEFAULT
        };
        for okey in self.overlap.overlapping_lines(key, other, sem) {
            // L2 before L1: an L2 dirty copy is older than an L1 dirty
            // copy of the same line, so the L1 data must reach DRAM last.
            if let Some(ev) = hier.l2.invalidate(okey) {
                events.emit(|| SimEvent::OverlapFlush {
                    addr: okey.addr,
                    pattern: okey.pattern,
                    store: true,
                });
                if ev.dirty {
                    wb.push(ev);
                }
            }
            for c in 0..hier.l1.len() {
                if let Some(ev) = hier.l1[c].invalidate(okey) {
                    events.emit(|| SimEvent::OverlapFlush {
                        addr: okey.addr,
                        pattern: okey.pattern,
                        store: true,
                    });
                    if ev.dirty {
                        wb.push(ev);
                    }
                }
            }
        }
    }
}

impl Machine {
    /// [`CoherenceEngine::flush_overlaps_before_fetch`] against this
    /// machine's hierarchy, immediately writing back the flushed lines
    /// at `at_cpu`.
    pub(crate) fn flush_overlaps_before_fetch(&mut self, key: LineKey, at_cpu: u64) {
        self.coherence.flush_overlaps_before_fetch(
            &self.pages,
            &mut self.hier,
            key,
            &mut self.wb,
            &mut self.events,
        );
        self.drain_writebacks(at_cpu);
    }

    /// [`CoherenceEngine::invalidate_overlaps_on_store`] against this
    /// machine's hierarchy, immediately writing back dirty casualties
    /// at `at_cpu`.
    pub(crate) fn invalidate_overlaps_on_store(&mut self, core: usize, key: LineKey, at_cpu: u64) {
        self.coherence.invalidate_overlaps_on_store(
            &self.pages,
            &mut self.hier,
            core,
            key,
            &mut self.wb,
            &mut self.events,
        );
        self.drain_writebacks(at_cpu);
    }
}
