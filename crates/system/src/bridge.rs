//! The DRAM bridge: everything below the caches.
//!
//! [`DramBridge`] owns the GS-DRAM module (the actual data), the
//! per-channel memory controllers (the timing, with a pluggable
//! scheduling engine — FR-FCFS by default), the address map (with its
//! configurable bank-hash stage), and the outstanding-fetch tracking that ties controller-level
//! sub-requests back to logical line fetches. It speaks two clock
//! domains: callers pass CPU-cycle times; controllers run on
//! memory-controller cycles (the bridge converts at the boundary).
//!
//! A logical fetch is one column command under GS-DRAM and one
//! default-pattern command per covered line under Impulse; the bridge
//! hides that difference behind `DramBridge::enqueue_fetch` /
//! `DramBridge::enqueue_write` and reports a fetch as a single
//! `FetchDone` once its last sub-request completes. Delivery back
//! into the caches (fills, pending stores, core wake-ups) is the
//! machine's composition job and lives in the `impl Machine` block
//! here.
//!
//! Hot-path note: word-address and sub-request expansion reuse
//! per-bridge scratch buffers, so steady-state fetch/writeback traffic
//! does not allocate.

use std::collections::BTreeMap;

use gsdram_cache::cache::LineKey;
use gsdram_cache::overlap::OverlapCalc;
use gsdram_core::port::{EventHub, MemReq, SimEvent};
use gsdram_core::stats::{ReportStats, StatsNode};
use gsdram_core::time::TimeFold;
use gsdram_core::{cast, ColumnId, Geometry, GsModule, PatternId, RowId};
use gsdram_dram::controller::{
    AccessKind, Completion, ControllerStats, MemController, MemRequest, ReqId,
};
use gsdram_dram::energy::EnergyBreakdown;
use gsdram_dram::mapping::AddressMap;
use gsdram_dram::shard;
use gsdram_telemetry::Histogram;

use crate::config::{GatherSupport, SystemConfig};
use crate::machine::Machine;
use crate::ops::Program;
use crate::page::PageTable;

/// A core blocked on an in-flight line fetch, with the request to
/// finish once data arrives.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Waiter {
    /// The blocked core.
    pub(crate) core: usize,
    /// The request to complete on delivery.
    pub(crate) req: MemReq,
}

/// One logical line fetch in flight at the controllers.
#[derive(Debug, Clone)]
struct Outstanding {
    key: LineKey,
    shuffled: bool,
    demand: bool,
    waiters: Vec<Waiter>,
    /// Sub-requests still in flight (1 for GS-DRAM; the number of
    /// covered lines for an Impulse gather).
    remaining: usize,
    /// Completion time of the latest finished sub-request (mem cycles).
    done_at: u64,
}

/// A logical line fetch whose last sub-request has completed, ready for
/// cache delivery.
#[derive(Debug)]
pub(crate) struct FetchDone {
    /// The fetched line.
    pub(crate) key: LineKey,
    /// Whether the line travelled the shuffle datapath.
    pub(crate) shuffled: bool,
    /// Whether a demand access (vs only a prefetch) requested it.
    #[allow(dead_code)]
    pub(crate) demand: bool,
    /// Cores to wake and requests to finish.
    pub(crate) waiters: Vec<Waiter>,
    /// Completion time of the slowest sub-request (mem cycles).
    pub(crate) done_at: u64,
}

/// What the bridge enqueued on one channel: the cross-channel load
/// split, counted at the enqueue boundary (controller stats count
/// issued commands; this counts logical sub-requests routed there).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelLoadStats {
    /// Read sub-requests routed to the channel.
    pub reads: u64,
    /// Write sub-requests routed to the channel.
    pub writes: u64,
}

impl ChannelLoadStats {
    /// Folds another channel's load into this one — the aggregation
    /// point the per-channel merge-exactness test exercises.
    pub fn merge(&mut self, other: &Self) {
        self.reads += other.reads;
        self.writes += other.writes;
    }
}

impl ReportStats for ChannelLoadStats {
    fn stats_node(&self, name: &str) -> StatsNode {
        StatsNode::new(name)
            .counter("enq_reads", self.reads)
            .counter("enq_writes", self.writes)
    }
}

/// One channel's telemetry snapshot: routed load, controller counters
/// and energy, reported as a per-channel subtree when a machine has
/// more than one channel.
#[derive(Debug, Clone)]
pub struct ChannelReport {
    /// Sub-requests the bridge routed to the channel.
    pub load: ChannelLoadStats,
    /// The channel controller's counters.
    pub dram: ControllerStats,
    /// The channel's energy breakdown.
    pub energy: EnergyBreakdown,
}

impl ReportStats for ChannelReport {
    fn stats_node(&self, name: &str) -> StatsNode {
        self.load
            .stats_node(name)
            .child(self.dram.stats_node("dram"))
            .child(self.energy.stats_node("energy"))
    }
}

/// The DRAM side of the machine. See the [module docs](self).
#[derive(Debug)]
pub struct DramBridge {
    module: GsModule,
    map: AddressMap,
    controllers: Vec<MemController>,
    loads: Vec<ChannelLoadStats>,
    overlap: OverlapCalc,
    gather: GatherSupport,
    chips: usize,
    cpu_per_mem: u64,
    outstanding: BTreeMap<ReqId, Outstanding>,
    by_key: BTreeMap<LineKey, ReqId>,
    /// Maps each DRAM sub-request to its logical fetch.
    parent_of: BTreeMap<ReqId, ReqId>,
    next_req: ReqId,
    /// Word-address scratch for functional line reads/writes.
    addr_buf: Vec<u64>,
    /// Sub-request scratch for enqueue expansion.
    sub_buf: Vec<(u64, PatternId)>,
}

impl DramBridge {
    pub(crate) fn new(cfg: &SystemConfig) -> Self {
        let rows = cfg.memory_bytes / cast::to_usize(cfg.row_bytes());
        // gsdram-lint: allow(D4) rows.max(1) keeps the geometry constructor total
        let geom = Geometry::ddr3_row(&cfg.gsdram, rows.max(1)).expect("valid geometry");
        DramBridge {
            module: GsModule::new(cfg.gsdram.clone(), geom),
            map: AddressMap::with_shape(
                cast::widen(cfg.l2.line_bytes),
                128,
                cast::widen(cfg.controller.banks),
                cast::widen(cfg.controller.ranks),
                cast::widen(cfg.channels.max(1)),
                gsdram_dram::mapping::Interleave::ColumnFirst,
            )
            .with_hash(cfg.mapping),
            controllers: (0..cfg.channels.max(1))
                .map(|ch| {
                    let mut c = MemController::new(cfg.controller.clone());
                    c.set_channel(ch);
                    c
                })
                .collect(),
            loads: vec![ChannelLoadStats::default(); cfg.channels.max(1)],
            overlap: OverlapCalc::new(cfg.gsdram.clone(), cast::widen(cfg.l2.line_bytes), 128),
            gather: cfg.gather,
            chips: cfg.gsdram.chips(),
            cpu_per_mem: cfg.cpu_per_mem,
            outstanding: BTreeMap::new(),
            by_key: BTreeMap::new(),
            parent_of: BTreeMap::new(),
            next_req: 0,
            addr_buf: Vec::new(),
            sub_buf: Vec::new(),
        }
    }

    pub(crate) fn channels(&self) -> usize {
        self.controllers.len()
    }

    pub(crate) fn to_mem(&self, cpu: u64) -> u64 {
        cpu / self.cpu_per_mem
    }

    pub(crate) fn to_cpu(&self, mem: u64) -> u64 {
        mem * self.cpu_per_mem
    }

    fn row_col(&self, addr: u64) -> (RowId, ColumnId, usize) {
        let rb = self.overlap.row_bytes();
        let row = cast::to_u32(addr / rb);
        let off = addr % rb;
        (
            RowId(row),
            ColumnId(cast::to_u32(off / 64)),
            cast::to_usize((off % 64) / 8),
        )
    }

    /// Which word-address semantics a line uses (see
    /// [`crate::coherence::CoherenceEngine::addr_semantics`]).
    fn addr_semantics(&self, pages: &PageTable, key: LineKey) -> bool {
        let shuffled = pages.info(key.addr).shuffle;
        shuffled || (self.gather == GatherSupport::Impulse && !key.pattern.is_default())
    }

    /// Writes `value` at `addr` directly into the DRAM module.
    pub(crate) fn poke(&mut self, pages: &PageTable, addr: u64, value: u64) {
        let shuffled = pages.info(addr).shuffle;
        let (row, col, word) = self.row_col(addr);
        let element = cast::index(col.0) * self.chips + word;
        self.module
            .write_element(row, element, shuffled, value)
            // gsdram-lint: allow(D4) row/element derive from an address the page table vetted
            .expect("poke within modelled memory");
    }

    /// Reads the value at `addr` from the DRAM module.
    pub(crate) fn peek(&self, pages: &PageTable, addr: u64) -> u64 {
        let shuffled = pages.info(addr).shuffle;
        let (row, col, word) = self.row_col(addr);
        let element = cast::index(col.0) * self.chips + word;
        self.module
            .read_element(row, element, shuffled)
            // gsdram-lint: allow(D4) row/element derive from an address the page table vetted
            .expect("peek within modelled memory")
    }

    /// Functionally writes a line's words into the DRAM module.
    pub(crate) fn write_line(&mut self, pages: &PageTable, key: LineKey, data: &[u64]) {
        let shuffled = pages.info(key.addr).shuffle;
        let sem = self.addr_semantics(pages, key);
        let mut addrs = std::mem::take(&mut self.addr_buf);
        self.overlap.word_addresses_into(key, sem, &mut addrs);
        for (a, v) in addrs.iter().zip(data) {
            let (row, col, word) = self.row_col(*a);
            let element = cast::index(col.0) * self.chips + word;
            self.module
                .write_element(row, element, shuffled, *v)
                // gsdram-lint: allow(D4) word addresses come from OverlapCalc over a resident line
                .expect("writeback within modelled memory");
        }
        self.addr_buf = addrs;
    }

    /// Functionally reads a line's words from the DRAM module into
    /// `out` (cleared first).
    pub(crate) fn read_line_into(&mut self, pages: &PageTable, key: LineKey, out: &mut Vec<u64>) {
        let shuffled = pages.info(key.addr).shuffle;
        let sem = self.addr_semantics(pages, key);
        let mut addrs = std::mem::take(&mut self.addr_buf);
        self.overlap.word_addresses_into(key, sem, &mut addrs);
        out.clear();
        for a in &addrs {
            let (row, col, word) = self.row_col(*a);
            let element = cast::index(col.0) * self.chips + word;
            out.push(
                self.module
                    .read_element(row, element, shuffled)
                    // gsdram-lint: allow(D4) word addresses come from OverlapCalc over a resident line
                    .expect("fetch within modelled memory"),
            );
        }
        self.addr_buf = addrs;
    }

    fn alloc_req_id(&mut self) -> ReqId {
        self.next_req += 1;
        self.next_req
    }

    /// The DRAM sub-requests backing one logical line fetch/writeback:
    /// one pattern command under GS-DRAM; one default-pattern command
    /// per covered line under Impulse. Written into `out` (cleared
    /// first).
    fn collect_subs(&self, key: LineKey, out: &mut Vec<(u64, PatternId)>) {
        out.clear();
        if self.gather == GatherSupport::Impulse && !key.pattern.is_default() {
            out.extend(
                self.overlap
                    .overlapping_lines(key, PatternId::DEFAULT, true)
                    .into_iter()
                    .map(|k| (k.addr, PatternId::DEFAULT)),
            );
        } else {
            out.push((key.addr, key.pattern));
        }
    }

    /// Enqueues the DRAM write(s) backing a line writeback (timing
    /// only; pair with [`DramBridge::write_line`] for the function).
    pub(crate) fn enqueue_write(&mut self, key: LineKey, at_cpu: u64, events: &mut EventHub) {
        let mut subs = std::mem::take(&mut self.sub_buf);
        self.collect_subs(key, &mut subs);
        if subs.len() > 1 {
            let (at_mem, n) = (self.to_mem(at_cpu), cast::len_to_u32(subs.len()));
            events.emit(|| SimEvent::GatherSplit {
                addr: key.addr,
                pattern: key.pattern,
                subs: n,
                at_mem,
            });
        }
        for &(a, pattern) in &subs {
            // One decompose drives both routing and coordinates: the
            // map's channel stage picks the controller (under the
            // default ColumnFirst split, channel bits sit just above
            // the row-offset bits, so one DRAM row — and hence every
            // gathered line — stays on one channel).
            let loc = self.map.decompose(a);
            let ch = loc.channel;
            let at = self.to_mem(at_cpu).max(self.controllers[ch].now());
            let id = self.alloc_req_id();
            let req = MemRequest {
                id,
                loc,
                pattern,
                kind: AccessKind::Write,
            };
            self.loads[ch].writes += 1;
            self.controllers[ch].enqueue(req, at);
            events.emit(|| SimEvent::DramEnqueue {
                id,
                channel: ch,
                addr: a,
                pattern,
                write: true,
                at_mem: at,
            });
        }
        self.sub_buf = subs;
    }

    /// Enqueues the DRAM fetch(es) backing a line fetch and registers
    /// the logical outstanding entry.
    pub(crate) fn enqueue_fetch(
        &mut self,
        key: LineKey,
        shuffled: bool,
        demand: bool,
        waiters: Vec<Waiter>,
        at_cpu: u64,
        events: &mut EventHub,
    ) {
        let mut subs = std::mem::take(&mut self.sub_buf);
        self.collect_subs(key, &mut subs);
        if subs.len() > 1 {
            let (at_mem, n) = (self.to_mem(at_cpu), cast::len_to_u32(subs.len()));
            events.emit(|| SimEvent::GatherSplit {
                addr: key.addr,
                pattern: key.pattern,
                subs: n,
                at_mem,
            });
        }
        let parent = self.alloc_req_id();
        self.outstanding.insert(
            parent,
            Outstanding {
                key,
                shuffled,
                demand,
                waiters,
                remaining: subs.len(),
                done_at: 0,
            },
        );
        self.by_key.insert(key, parent);
        for &(a, pattern) in &subs {
            let loc = self.map.decompose(a);
            let ch = loc.channel;
            let at = self.to_mem(at_cpu).max(self.controllers[ch].now());
            let id = self.alloc_req_id();
            self.parent_of.insert(id, parent);
            let req = MemRequest {
                id,
                loc,
                pattern,
                kind: AccessKind::Read,
            };
            self.loads[ch].reads += 1;
            self.controllers[ch].enqueue(req, at);
            events.emit(|| SimEvent::DramEnqueue {
                id,
                channel: ch,
                addr: a,
                pattern,
                write: false,
                at_mem: at,
            });
        }
        self.sub_buf = subs;
    }

    /// Whether a fetch of `key` is already in flight.
    pub(crate) fn in_flight(&self, key: LineKey) -> bool {
        self.by_key.contains_key(&key)
    }

    /// Attaches `waiter` to an in-flight fetch of `key` (promoting it
    /// to a demand fetch). Returns `false` if none is in flight.
    pub(crate) fn attach_waiter(&mut self, key: LineKey, waiter: Waiter) -> bool {
        let Some(&id) = self.by_key.get(&key) else {
            return false;
        };
        // gsdram-lint: allow(D4) by_key and outstanding are inserted/removed together
        let out = self.outstanding.get_mut(&id).expect("tracked");
        out.demand = true;
        out.waiters.push(waiter);
        true
    }

    /// Advances every channel to `t_mem`. When `shard_ok` is set, no
    /// observer is attached, and the span carries enough work to
    /// amortise thread spawn, the channels advance on one thread each
    /// ([`shard::advance_sharded`]); the serial loop runs otherwise.
    /// Controllers are disjoint, so the two paths are bit-identical —
    /// the shard gate is purely a wall-clock decision.
    pub(crate) fn advance_all(&mut self, t_mem: u64, shard_ok: bool, events: &mut EventHub) {
        if shard_ok && !events.is_attached() && shard::worth_sharding(&self.controllers, t_mem) {
            shard::advance_sharded(&mut self.controllers, t_mem);
        } else {
            for c in &mut self.controllers {
                c.advance_observed(t_mem, events);
            }
        }
    }

    /// The exact next memory-clock cycle at which any channel's state
    /// can change or a recorded completion becomes due: the global fold
    /// of every controller's [`MemController::next_event`] and earliest
    /// pending completion. `None` when the whole memory system is idle.
    pub(crate) fn next_event(&self) -> Option<u64> {
        let mut fold = TimeFold::new();
        for c in &self.controllers {
            fold.fold_opt(c.next_event());
            fold.fold_opt(c.peek_completion());
        }
        fold.earliest()
    }

    /// Whether every channel is provably quiet through memory cycle
    /// `t_mem`: no command can issue and no completion becomes due.
    /// Cheap (cached horizons only, no scheduling scans), so the
    /// per-op sync path can use it as a leap guard.
    pub(crate) fn quiescent_until(&self, t_mem: u64) -> bool {
        self.controllers.iter().all(|c| c.quiescent_until(t_mem))
    }

    /// Leaps every channel's clock (and energy cursor) to `t_mem`.
    /// Equivalent to [`advance_channel`](Self::advance_channel) on each
    /// channel; meant for the quiescent case where the caller skips
    /// completion polling entirely.
    pub(crate) fn leap_to(&mut self, t_mem: u64, events: &mut EventHub) {
        for c in &mut self.controllers {
            c.advance_observed(t_mem, events);
        }
    }

    /// Drains the completions due by `t_mem` on channel `ch` into
    /// `out` (appended in recorded order; `out` is not cleared), so the
    /// steady-state delivery loop reuses one machine-owned buffer
    /// instead of allocating per poll.
    pub(crate) fn take_channel_completions_into(
        &mut self,
        ch: usize,
        t_mem: u64,
        out: &mut Vec<Completion>,
    ) {
        self.controllers[ch].take_completions_into(t_mem, out);
    }

    pub(crate) fn advance_channel_until_completion(
        &mut self,
        ch: usize,
        events: &mut EventHub,
    ) -> Option<u64> {
        self.controllers[ch].advance_until_completion_observed(events)
    }

    /// Records one controller completion. Returns the finished logical
    /// fetch when this was the last sub-request of a read; `None` for
    /// writeback completions and partial Impulse gathers.
    pub(crate) fn note_completion(
        &mut self,
        c: Completion,
        events: &mut EventHub,
    ) -> Option<FetchDone> {
        events.emit(|| SimEvent::DramComplete {
            id: c.id,
            at_mem: c.at,
        });
        let parent = self.parent_of.remove(&c.id)?;
        {
            // gsdram-lint: allow(D4) parent_of entries are created with their outstanding entry
            let out = self.outstanding.get_mut(&parent).expect("parent tracked");
            out.done_at = out.done_at.max(c.at);
            out.remaining -= 1;
            if out.remaining > 0 {
                return None; // an Impulse gather is still collecting lines
            }
        }
        // gsdram-lint: allow(D4) remaining just hit zero, the entry is still present
        let out = self.outstanding.remove(&parent).expect("parent tracked");
        self.by_key.remove(&out.key);
        Some(FetchDone {
            key: out.key,
            shuffled: out.shuffled,
            demand: out.demand,
            waiters: out.waiters,
            done_at: out.done_at,
        })
    }

    /// Controller statistics summed over all channels.
    pub(crate) fn stats(&self) -> ControllerStats {
        let mut total = ControllerStats::default();
        for c in &self.controllers {
            total.merge(&c.stats());
        }
        total
    }

    /// Per-channel read-latency histograms (arrival to data-burst
    /// completion, memory cycles). Maintained unconditionally by the
    /// controllers, so report output never depends on observation.
    pub(crate) fn read_latency_hists(&self) -> Vec<Histogram> {
        self.controllers
            .iter()
            .map(|c| c.read_latency_hist().clone())
            .collect()
    }

    /// Per-channel queue-depth histograms (occupancy sampled at each
    /// column-command retire).
    pub(crate) fn queue_depth_hists(&self) -> Vec<Histogram> {
        self.controllers
            .iter()
            .map(|c| c.queue_depth_hist().clone())
            .collect()
    }

    /// Per-channel telemetry snapshots (routed load, controller
    /// counters, energy), in channel order.
    pub(crate) fn channel_reports(&self) -> Vec<ChannelReport> {
        self.controllers
            .iter()
            .zip(&self.loads)
            .map(|(c, &load)| ChannelReport {
                load,
                dram: c.stats(),
                energy: c.energy(),
            })
            .collect()
    }

    /// DRAM energy summed over all channels.
    pub(crate) fn energy(&self) -> EnergyBreakdown {
        let mut total = EnergyBreakdown::default();
        for c in &self.controllers {
            total.merge(&c.energy());
        }
        total
    }
}

impl Machine {
    /// Applies a completed logical fetch: fills caches, applies pending
    /// stores, wakes waiting cores, feeds loaded values to programs.
    fn deliver(&mut self, done: FetchDone, programs: &mut [&mut dyn Program]) {
        let done_cpu = self.bridge.to_cpu(done.done_at);
        let shuffle_penalty = if done.shuffled {
            self.cfg.shuffle_latency
        } else {
            0
        };

        // Fill L2 (unless a writeback landed the line there meanwhile).
        let mut buf = std::mem::take(&mut self.line_buf);
        if self.hier.l2.contains(done.key) {
            self.hier.l2.probe(done.key, false);
            buf.clear();
            // gsdram-lint: allow(D4) contains() held on the line above
            buf.extend_from_slice(self.hier.l2.data(done.key).expect("resident"));
        } else {
            self.bridge.read_line_into(&self.pages, done.key, &mut buf);
            self.hier
                .fill_l2(done.key, &buf, &mut self.wb, &mut self.events);
            self.drain_writebacks(done_cpu);
        }

        for w in done.waiters {
            let wake = done_cpu + self.cfg.l1.latency + shuffle_penalty;
            if !self.hier.l1[w.core].contains(done.key) {
                self.hier
                    .fill_l1(w.core, done.key, &buf, &mut self.wb, &mut self.events);
                self.drain_writebacks(done_cpu);
            }
            let word = w.req.word_index(64);
            let value = if let Some(v) = w.req.store_value() {
                self.invalidate_overlaps_on_store(w.core, done.key, done_cpu);
                self.hier.l1[w.core].probe(done.key, true);
                // gsdram-lint: allow(D4) fill_l1 ran above for any core missing the line
                let d = self.hier.l1[w.core].data_mut(done.key).expect("filled");
                d[word] = v;
                v
            } else {
                // gsdram-lint: allow(D4) fill_l1 ran above for any core missing the line
                self.hier.l1[w.core].data(done.key).expect("filled")[word]
            };
            if w.req.store_value().is_none() {
                programs[w.core].on_load_value(value);
            }
            let core = self.cores.core_mut(w.core);
            core.waiting = false;
            core.time = core.time.max(wake);
        }
        self.line_buf = buf;
    }

    /// Advances the memory system to CPU time `t`, delivering any
    /// completions.
    pub(crate) fn sync_memory(&mut self, t_cpu: u64, programs: &mut [&mut dyn Program]) {
        let t_mem = self.bridge.to_mem(t_cpu);
        if self.bridge.quiescent_until(t_mem) {
            // Every channel's horizon proves nothing can issue and no
            // completion comes due by `t_mem`: leap the clocks and skip
            // the completion-polling loop.
            self.bridge.leap_to(t_mem, &mut self.events);
            return;
        }
        // Advance every channel to the horizon first — the controllers
        // are independent, so this is where the sharded advance slots
        // in — then drain and deliver per channel. Delivery can
        // enqueue fresh writebacks; those land at or after `t_mem` and
        // are processed by the next sync, on every path identically.
        self.bridge
            .advance_all(t_mem, self.cfg.shard, &mut self.events);
        let mut comps = std::mem::take(&mut self.comp_buf);
        for ch in 0..self.bridge.channels() {
            comps.clear();
            self.bridge
                .take_channel_completions_into(ch, t_mem, &mut comps);
            for c in comps.drain(..) {
                if let Some(done) = self.bridge.note_completion(c, &mut self.events) {
                    self.deliver(done, programs);
                }
            }
        }
        self.comp_buf = comps;
    }

    /// All active cores are blocked: advance DRAM until at least one
    /// demand completion is delivered.
    pub(crate) fn advance_until_completion(&mut self, programs: &mut [&mut dyn Program]) {
        loop {
            let mut progressed = false;
            let mut comps = std::mem::take(&mut self.comp_buf);
            for ch in 0..self.bridge.channels() {
                let Some(t) = self
                    .bridge
                    .advance_channel_until_completion(ch, &mut self.events)
                else {
                    continue;
                };
                comps.clear();
                self.bridge.take_channel_completions_into(ch, t, &mut comps);
                for c in comps.drain(..) {
                    if let Some(done) = self.bridge.note_completion(c, &mut self.events) {
                        self.deliver(done, programs);
                    }
                }
                progressed = true;
            }
            self.comp_buf = comps;
            assert!(
                progressed,
                "deadlock: cores waiting but no memory traffic outstanding"
            );
            if self.cores.any_ready() {
                return;
            }
        }
    }
}
