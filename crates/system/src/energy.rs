//! Processor energy model (the McPAT substitution — DESIGN.md §2).
//!
//! The paper estimates processor energy with McPAT (§5.1). The energy
//! differences it reports are driven by execution time (static/clock
//! power × seconds) and activity (per-operation and per-cache-access
//! dynamic energy); this model keeps exactly those two terms with
//! constants representative of a small in-order core at 4 GHz in a
//! ~22 nm-class process.

use crate::config::SystemConfig;
use gsdram_core::stats::{ReportStats, StatsNode};
use gsdram_dram::energy::EnergyBreakdown;

/// Per-component CPU energy constants.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuEnergyModel {
    /// Static + clock-tree power per core, watts.
    pub static_w_per_core: f64,
    /// Dynamic energy per executed operation, nanojoules.
    pub nj_per_op: f64,
    /// Dynamic energy per L1 access, nanojoules.
    pub nj_per_l1: f64,
    /// Dynamic energy per L2 access, nanojoules.
    pub nj_per_l2: f64,
}

impl Default for CpuEnergyModel {
    fn default() -> Self {
        CpuEnergyModel {
            static_w_per_core: 1.0,
            nj_per_op: 0.15,
            nj_per_l1: 0.05,
            nj_per_l2: 0.5,
        }
    }
}

/// CPU + DRAM energy totals for one run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Static/clock energy, millijoules.
    pub cpu_static_mj: f64,
    /// Core dynamic energy, millijoules.
    pub cpu_dynamic_mj: f64,
    /// Cache dynamic energy, millijoules.
    pub cache_mj: f64,
    /// DRAM energy, millijoules.
    pub dram_mj: f64,
}

impl ReportStats for EnergyReport {
    fn stats_node(&self, name: &str) -> StatsNode {
        StatsNode::new(name)
            .gauge("cpu_static_mj", self.cpu_static_mj)
            .gauge("cpu_dynamic_mj", self.cpu_dynamic_mj)
            .gauge("cache_mj", self.cache_mj)
            .gauge("dram_mj", self.dram_mj)
            .gauge("total_mj", self.total_mj())
    }
}

impl EnergyReport {
    /// Total system energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.cpu_static_mj + self.cpu_dynamic_mj + self.cache_mj + self.dram_mj
    }
}

impl CpuEnergyModel {
    /// Folds run activity into an [`EnergyReport`].
    pub fn report(
        &self,
        cfg: &SystemConfig,
        cpu_cycles: u64,
        ops: u64,
        l1_accesses: u64,
        l2_accesses: u64,
        dram: EnergyBreakdown,
    ) -> EnergyReport {
        let seconds = cfg.seconds(cpu_cycles);
        EnergyReport {
            cpu_static_mj: self.static_w_per_core * cfg.cores as f64 * seconds * 1e3,
            cpu_dynamic_mj: ops as f64 * self.nj_per_op * 1e-6,
            cache_mj: (l1_accesses as f64 * self.nj_per_l1 + l2_accesses as f64 * self.nj_per_l2)
                * 1e-6,
            dram_mj: dram.total_mj(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_scales_with_activity() {
        let cfg = SystemConfig::table1(1, 1 << 20);
        let m = CpuEnergyModel::default();
        let small = m.report(&cfg, 1000, 100, 100, 10, EnergyBreakdown::default());
        let big = m.report(&cfg, 2000, 200, 200, 20, EnergyBreakdown::default());
        assert!(big.total_mj() > small.total_mj());
        assert!((big.cpu_static_mj - 2.0 * small.cpu_static_mj).abs() < 1e-12);
    }

    #[test]
    fn static_term_matches_power_times_time() {
        let cfg = SystemConfig::table1(2, 1 << 20);
        let m = CpuEnergyModel::default();
        // 4e9 cycles at 4 GHz = 1 second; 2 cores × 1 W = 2 J = 2000 mJ.
        let r = m.report(&cfg, 4_000_000_000, 0, 0, 0, EnergyBreakdown::default());
        assert!((r.cpu_static_mj - 2000.0).abs() < 1e-6);
        assert_eq!(r.cpu_dynamic_mj, 0.0);
    }

    #[test]
    fn dram_term_passes_through() {
        let cfg = SystemConfig::table1(1, 1 << 20);
        let m = CpuEnergyModel::default();
        let dram = EnergyBreakdown {
            read_nj: 2_000_000.0,
            ..Default::default()
        };
        let r = m.report(&cfg, 0, 0, 0, 0, dram);
        assert!((r.dram_mj - 2.0).abs() < 1e-9);
    }
}
