//! System configuration (paper Table 1).

use gsdram_cache::cache::CacheConfig;
use gsdram_core::GsDramConfig;
use gsdram_dram::controller::{ControllerConfig, SchedPolicy};
use gsdram_dram::mapping::MapHash;
use gsdram_dram::timing::TimingPack;

/// How strided gathers are realised by the memory system (the §7
/// related-work axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherSupport {
    /// GS-DRAM: in-DRAM address translation — one column command per
    /// gathered line (the paper's proposal).
    GsDram,
    /// Impulse-style (Carter et al., HPCA'99): the memory controller
    /// assembles the gathered line from ordinary reads of every cache
    /// line it touches. Saves controller→processor bandwidth and cache
    /// space, but the controller→DRAM traffic is unchanged (§7: with
    /// commodity modules "Impulse cannot mitigate the wasted memory
    /// bandwidth consumption between the memory controller and DRAM").
    Impulse,
}

/// Full-system parameters. The default reproduces Table 1:
///
/// | Component | Setting |
/// |---|---|
/// | Processor | 1–2 cores, in-order, 4 GHz |
/// | L1-D | private, 32 KB, 8-way, LRU |
/// | L2 | shared, 2 MB, 8-way, LRU |
/// | Memory | DDR3-1600, 1 channel, 1 rank, 8 banks |
/// | Policy | open row, FR-FCFS |
/// | Substrate | GS-DRAM(8,3,3) |
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of in-order cores.
    pub cores: usize,
    /// CPU clock in GHz (used with the DRAM clock for cycle conversion).
    // gsdram-lint: allow(D5) report axis only; cycle conversion uses integer cpu_per_mem
    pub cpu_ghz: f64,
    /// CPU cycles per memory-controller cycle (4 GHz / 800 MHz = 5).
    pub cpu_per_mem: u64,
    /// Private L1 data cache shape.
    pub l1: CacheConfig,
    /// Shared L2 shape.
    pub l2: CacheConfig,
    /// Memory controller and DDR3 parameters.
    pub controller: ControllerConfig,
    /// GS-DRAM substrate parameters.
    pub gsdram: GsDramConfig,
    /// Modelled physical memory capacity in bytes.
    pub memory_bytes: usize,
    /// Whether the PC-based stride prefetcher (degree 4, into L2) runs.
    pub prefetch: bool,
    /// Extra CPU cycles to shuffle/unshuffle a line at the memory
    /// controller (§3.6: one cycle per stage; 3 for GS-DRAM(8,3,3)).
    pub shuffle_latency: u64,
    /// How non-unit-stride gathers are realised.
    pub gather: GatherSupport,
    /// Independent DRAM channels. Lines interleave across channels at
    /// DRAM-row granularity, so a gathered line never spans channels
    /// (the simple end of the §4.2 interleaving discussion).
    pub channels: usize,
    /// XOR-stage preset of the physical-address map (Table 1 uses the
    /// direct map; the hash stages are ablation axes).
    pub mapping: MapHash,
    /// Shard per-channel controller advance across threads when a sync
    /// spans enough work (never while a trace observer is attached —
    /// results are bit-identical either way, see
    /// [`gsdram_dram::shard`]).
    pub shard: bool,
}

impl SystemConfig {
    /// The Table 1 system with the given core count and memory size.
    pub fn table1(cores: usize, memory_bytes: usize) -> Self {
        SystemConfig {
            cores,
            // gsdram-lint: allow(D5) report axis only; cycle conversion uses integer cpu_per_mem
            cpu_ghz: 4.0,
            cpu_per_mem: 5,
            l1: CacheConfig::l1_32k(),
            l2: CacheConfig::l2_2m(),
            controller: ControllerConfig::default(),
            gsdram: GsDramConfig::gs_dram_8_3_3(),
            memory_bytes,
            prefetch: false,
            shuffle_latency: 3,
            gather: GatherSupport::GsDram,
            channels: 1,
            mapping: MapHash::Direct,
            shard: false,
        }
    }

    /// Enables the stride prefetcher (the "with prefetching"
    /// configurations of §5.1).
    pub fn with_prefetch(mut self) -> Self {
        self.prefetch = true;
        self
    }

    /// Switches gather support to the Impulse-style memory-controller
    /// baseline (§7 comparison).
    pub fn with_impulse(mut self) -> Self {
        self.gather = GatherSupport::Impulse;
        self
    }

    /// Uses `ranks` DRAM ranks on the channel (Table 1 uses one; §4.2
    /// discusses interleaving gathered lines across ranks).
    pub fn with_ranks(mut self, ranks: usize) -> Self {
        self.controller.ranks = ranks;
        self
    }

    /// Uses `channels` independent DRAM channels (Table 1 uses one).
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.channels = channels.max(1);
        self
    }

    /// Uses scheduling policy `sched` at every memory controller
    /// (Table 1 uses FR-FCFS).
    pub fn with_sched(mut self, sched: SchedPolicy) -> Self {
        self.controller.policy = sched;
        self
    }

    /// Uses XOR-stage preset `mapping` in the physical-address map
    /// (Table 1 uses the direct map).
    pub fn with_mapping(mut self, mapping: MapHash) -> Self {
        self.mapping = mapping;
        self
    }

    /// Re-times the memory system with a named [`TimingPack`]: the
    /// constraint table and the CPU:memory clock ratio swap together.
    pub fn with_timing(mut self, pack: TimingPack) -> Self {
        self.controller.timing = pack.params();
        self.cpu_per_mem = pack.cpu_per_mem();
        self
    }

    /// Enables the sharded per-channel advance (a pure wall-clock
    /// optimisation; simulated results are unchanged).
    pub fn with_shard(mut self) -> Self {
        self.shard = true;
        self
    }

    /// Converts a CPU-cycle time to memory-controller cycles (floor).
    pub fn to_mem_cycles(&self, cpu: u64) -> u64 {
        cpu / self.cpu_per_mem
    }

    /// Converts a memory-controller cycle to CPU cycles (ceiling, so a
    /// completion is never reported early).
    pub fn to_cpu_cycles(&self, mem: u64) -> u64 {
        mem * self.cpu_per_mem
    }

    /// Seconds represented by `cpu_cycles`.
    // gsdram-lint: allow-block(D5) report-axis unit conversion; never feeds simulated timing
    pub fn seconds(&self, cpu_cycles: u64) -> f64 {
        cpu_cycles as f64 / (self.cpu_ghz * 1e9)
    }

    /// Bytes per DRAM row (line size × columns per row).
    pub fn row_bytes(&self) -> u64 {
        self.l2.line_bytes as u64 * 128
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::table1(1, 128 << 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = SystemConfig::table1(2, 64 << 20);
        assert_eq!(c.cores, 2);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(c.l1.assoc, 8);
        assert_eq!(c.gsdram.chips(), 8);
        assert_eq!(c.cpu_per_mem, 5);
        assert!(!c.prefetch);
        assert!(c.clone().with_prefetch().prefetch);
        assert_eq!(c.gather, GatherSupport::GsDram);
        assert_eq!(c.clone().with_impulse().gather, GatherSupport::Impulse);
    }

    #[test]
    fn sched_and_mapping_builders() {
        let c = SystemConfig::default();
        assert_eq!(c.controller.policy, SchedPolicy::FrFcfs);
        assert_eq!(c.mapping, MapHash::Direct);
        let c = c
            .with_sched(SchedPolicy::FrFcfsCap { cap: 8 })
            .with_mapping(MapHash::XorBank);
        assert_eq!(c.controller.policy, SchedPolicy::FrFcfsCap { cap: 8 });
        assert_eq!(c.mapping, MapHash::XorBank);
    }

    #[test]
    fn timing_pack_swaps_clock_ratio_with_constraints() {
        let c = SystemConfig::default().with_timing(TimingPack::Ddr4_2400);
        assert_eq!(c.cpu_per_mem, 3);
        assert_eq!(c.controller.timing.tck_ps, 833);
        let back = SystemConfig::default().with_timing(TimingPack::Ddr3_1600);
        assert_eq!(back.cpu_per_mem, 5);
        assert_eq!(
            back.controller.timing,
            SystemConfig::default().controller.timing,
            "the DDR3 pack is the default"
        );
    }

    #[test]
    fn cycle_conversions() {
        let c = SystemConfig::default();
        assert_eq!(c.to_mem_cycles(10), 2);
        assert_eq!(c.to_cpu_cycles(2), 10);
        assert!((c.seconds(4_000_000_000) - 1.0).abs() < 1e-12);
    }
}
