//! Memory-trace capture and replay.
//!
//! Simulators of this kind are commonly driven from traces as well as
//! from synthetic workloads. This module defines a line-oriented text
//! format for `pattload`/`pattstore`/compute streams and two adapters:
//!
//! * [`TraceRecorder`] wraps any [`Program`] and tees every op it
//!   yields into a writer;
//! * [`TraceReplayer`] plays a recorded trace back as a [`Program`].
//!
//! Format (one op per line, `#` comments ignored):
//!
//! ```text
//! L <addr> <pattern> <pc>            # 8-byte load
//! W <addr> <pattern> <pc>            # 16-byte (xmm) load
//! S <addr> <pattern> <pc> <value>    # 8-byte store
//! C <cycles>                         # compute batch
//! ```
//!
//! Addresses and values are hexadecimal; pattern and pc decimal.

use std::io::{self, BufRead, Write};

use gsdram_core::PatternId;

use crate::ops::{Op, Program};

/// Serialises one op as a trace line.
pub fn format_op(op: &Op) -> String {
    match op {
        Op::Load { pc, addr, pattern } => format!("L {addr:x} {} {pc}", pattern.0),
        Op::Load16 { pc, addr, pattern } => format!("W {addr:x} {} {pc}", pattern.0),
        Op::Store {
            pc,
            addr,
            pattern,
            value,
        } => {
            format!("S {addr:x} {} {pc} {value:x}", pattern.0)
        }
        Op::Compute(c) => format!("C {c}"),
    }
}

/// Parses one trace line (empty/comment lines return `Ok(None)`).
///
/// # Errors
///
/// Returns [`io::Error`] with `InvalidData` on malformed lines.
pub fn parse_line(line: &str) -> io::Result<Option<Op>> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("{msg}: {line}"));
    let fields: Vec<&str> = line.split_whitespace().collect();
    let hex = |i: usize, name: &str| -> io::Result<u64> {
        let f = fields.get(i).ok_or_else(|| bad(name))?;
        u64::from_str_radix(f, 16).map_err(|_| bad(name))
    };
    match fields[0] {
        kind @ ("L" | "W" | "S") => {
            let addr = hex(1, "missing/invalid addr")?;
            let pattern = fields
                .get(2)
                .and_then(|f| f.parse::<u8>().ok())
                .ok_or_else(|| bad("missing/invalid pattern"))?;
            let pc = fields
                .get(3)
                .and_then(|f| f.parse::<u64>().ok())
                .ok_or_else(|| bad("missing/invalid pc"))?;
            let pattern = PatternId(pattern);
            let op = match kind {
                "L" => Op::Load { pc, addr, pattern },
                "W" => Op::Load16 { pc, addr, pattern },
                _ => {
                    let value = hex(4, "missing/invalid value")?;
                    Op::Store {
                        pc,
                        addr,
                        pattern,
                        value,
                    }
                }
            };
            Ok(Some(op))
        }
        "C" => {
            let c = fields
                .get(1)
                .and_then(|f| f.parse::<u32>().ok())
                .ok_or_else(|| bad("missing/invalid cycle count"))?;
            Ok(Some(Op::Compute(c)))
        }
        _ => Err(bad("unknown op kind")),
    }
}

/// Tees the ops of an inner program into a writer while running it.
///
/// ```
/// use gsdram_system::ops::{Op, Program, ScriptedProgram};
/// use gsdram_system::trace::TraceRecorder;
/// let inner = ScriptedProgram::new(vec![Op::Compute(5)]);
/// let mut rec = TraceRecorder::new(inner, Vec::new());
/// while rec.next_op().is_some() {}
/// let (_, bytes) = rec.into_parts();
/// assert_eq!(String::from_utf8(bytes).unwrap(), "C 5\n");
/// ```
#[derive(Debug)]
pub struct TraceRecorder<P, W> {
    inner: P,
    out: W,
    ops_written: u64,
}

impl<P: Program, W: Write> TraceRecorder<P, W> {
    /// Wraps `inner`, writing each yielded op to `out`.
    pub fn new(inner: P, out: W) -> Self {
        TraceRecorder {
            inner,
            out,
            ops_written: 0,
        }
    }

    /// Finishes recording, returning the inner program and writer.
    pub fn into_parts(self) -> (P, W) {
        (self.inner, self.out)
    }

    /// Ops recorded so far.
    pub fn ops_written(&self) -> u64 {
        self.ops_written
    }
}

impl<P: Program, W: Write> Program for TraceRecorder<P, W> {
    fn next_op(&mut self) -> Option<Op> {
        let op = self.inner.next_op()?;
        // gsdram-lint: allow(D4) Program::next_op cannot carry IO errors; a broken trace sink is fatal
        writeln!(self.out, "{}", format_op(&op)).expect("trace write failed");
        self.ops_written += 1;
        Some(op)
    }

    fn on_load_value(&mut self, value: u64) {
        self.inner.on_load_value(value);
    }

    fn progress(&self) -> u64 {
        self.inner.progress()
    }

    fn result(&self) -> u64 {
        self.inner.result()
    }
}

/// Plays a recorded trace back as a program, folding loaded values into
/// a checksum like the synthetic workloads do.
#[derive(Debug)]
pub struct TraceReplayer<R> {
    lines: io::Lines<R>,
    sum: u64,
    ops_replayed: u64,
}

impl<R: BufRead> TraceReplayer<R> {
    /// A replayer over `reader`.
    pub fn new(reader: R) -> Self {
        TraceReplayer {
            lines: reader.lines(),
            sum: 0,
            ops_replayed: 0,
        }
    }

    /// Ops replayed so far.
    pub fn ops_replayed(&self) -> u64 {
        self.ops_replayed
    }
}

impl<R: BufRead> Program for TraceReplayer<R> {
    fn next_op(&mut self) -> Option<Op> {
        loop {
            // gsdram-lint: allow(D4) Program::next_op cannot carry IO errors; a broken trace source is fatal
            let line = self.lines.next()?.expect("trace read failed");
            // gsdram-lint: allow(D4) replaying a corrupt trace is fatal; carrying on would skew results silently
            match parse_line(&line).expect("malformed trace line") {
                Some(op) => {
                    self.ops_replayed += 1;
                    return Some(op);
                }
                None => continue,
            }
        }
    }

    fn on_load_value(&mut self, value: u64) {
        self.sum = self.sum.wrapping_add(value);
    }

    fn progress(&self) -> u64 {
        self.ops_replayed
    }

    fn result(&self) -> u64 {
        self.sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::machine::{Machine, StopWhen};
    use crate::ops::ScriptedProgram;
    use std::io::BufReader;

    #[test]
    fn format_parse_round_trip() {
        let ops = [
            Op::Load {
                pc: 12,
                addr: 0xdeadb0,
                pattern: PatternId(7),
            },
            Op::Load16 {
                pc: 3,
                addr: 0x40,
                pattern: PatternId(0),
            },
            Op::Store {
                pc: 9,
                addr: 0x1000,
                pattern: PatternId(1),
                value: 0xfeed,
            },
            Op::Compute(37),
        ];
        for op in ops {
            let line = format_op(&op);
            let back = parse_line(&line).unwrap().expect("op line");
            assert_eq!(back, op, "{line}");
        }
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        assert_eq!(parse_line("").unwrap(), None);
        assert_eq!(parse_line("   ").unwrap(), None);
        assert_eq!(parse_line("# header").unwrap(), None);
    }

    #[test]
    fn malformed_lines_error() {
        for bad in ["X 1 2 3", "L zz 0 1", "L 40", "S 40 0 1", "C", "C x"] {
            assert!(parse_line(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn record_then_replay_is_cycle_identical() {
        let build_ops = |base: u64| -> Vec<Op> {
            (0..64u64)
                .flat_map(|i| {
                    [
                        Op::Load {
                            pc: 1,
                            addr: base + i * 72 % 4096,
                            pattern: PatternId(0),
                        },
                        Op::Store {
                            pc: 2,
                            addr: base + i * 40 % 4096,
                            pattern: PatternId(0),
                            value: i,
                        },
                        Op::Compute(3),
                    ]
                })
                .collect()
        };

        // Record.
        let mut m = Machine::new(SystemConfig::table1(1, 1 << 20));
        let base = m.malloc(4096);
        let mut trace = Vec::new();
        let mut rec = TraceRecorder::new(ScriptedProgram::new(build_ops(base)), &mut trace);
        let r1 = {
            let mut programs: Vec<&mut dyn Program> = vec![&mut rec];
            m.run(&mut programs, StopWhen::AllDone)
        };
        assert_eq!(rec.ops_written(), 192);

        // Replay on a fresh machine.
        let mut m = Machine::new(SystemConfig::table1(1, 1 << 20));
        let base2 = m.malloc(4096);
        assert_eq!(base, base2, "deterministic allocator");
        let mut rep = TraceReplayer::new(BufReader::new(&trace[..]));
        let r2 = {
            let mut programs: Vec<&mut dyn Program> = vec![&mut rep];
            m.run(&mut programs, StopWhen::AllDone)
        };
        assert_eq!(rep.ops_replayed(), 192);
        assert_eq!(
            r1.cpu_cycles, r2.cpu_cycles,
            "replay must be cycle-identical"
        );
        assert_eq!(r1.dram.reads, r2.dram.reads);
        assert_eq!(r1.results[0], r2.results[0]);
    }

    #[test]
    fn randomized_program_round_trips_through_trace() {
        use gsdram_core::rng::SplitMix;
        use gsdram_core::stats::ReportStats;

        // A randomized op stream covering every trace line kind,
        // recorded and replayed on identically configured machines:
        // the two runs must agree on the whole report, not just a few
        // headline counters.
        let region = 1u64 << 16;
        let mut rng = SplitMix(0x5eed_cafe);
        let mut ops = Vec::new();
        for _ in 0..400 {
            let addr_off = rng.below(region / 8) * 8;
            let pc = rng.range(1, 64);
            match rng.below(4) {
                0 => ops.push((0u8, addr_off, pc, 0u64)),
                1 => ops.push((1, addr_off & !15, pc, 0)),
                2 => ops.push((2, addr_off, pc, rng.next_u64())),
                _ => ops.push((3, 0, rng.range(1, 20), 0)),
            }
        }
        let build = |base: u64| -> Vec<Op> {
            ops.iter()
                .map(|&(kind, off, pc, value)| match kind {
                    0 => Op::Load {
                        pc,
                        addr: base + off,
                        pattern: PatternId(0),
                    },
                    1 => Op::Load16 {
                        pc,
                        addr: base + off,
                        pattern: PatternId(0),
                    },
                    2 => Op::Store {
                        pc,
                        addr: base + off,
                        pattern: PatternId(0),
                        value,
                    },
                    _ => Op::Compute(pc as u32),
                })
                .collect()
        };

        let mut m = Machine::new(SystemConfig::table1(1, 1 << 20));
        let base = m.malloc(region);
        let mut trace = Vec::new();
        let mut rec = TraceRecorder::new(ScriptedProgram::new(build(base)), &mut trace);
        let r1 = {
            let mut programs: Vec<&mut dyn Program> = vec![&mut rec];
            m.run(&mut programs, StopWhen::AllDone)
        };
        assert_eq!(rec.ops_written(), 400);

        let mut m = Machine::new(SystemConfig::table1(1, 1 << 20));
        let base2 = m.malloc(region);
        assert_eq!(base, base2, "deterministic allocator");
        let mut rep = TraceReplayer::new(BufReader::new(&trace[..]));
        let r2 = {
            let mut programs: Vec<&mut dyn Program> = vec![&mut rep];
            m.run(&mut programs, StopWhen::AllDone)
        };
        assert_eq!(rep.ops_replayed(), 400);
        assert_eq!(
            r1.stats_node("run").to_json(),
            r2.stats_node("run").to_json(),
            "replayed run must reproduce the full report"
        );
    }
}
