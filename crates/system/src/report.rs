//! Run-report assembly: gathering every component's statistics into
//! one [`RunReport`] / stats tree at the end of a
//! [`Machine::run`](crate::Machine::run).

use gsdram_cache::cache::CacheStats;
use gsdram_cache::dbi::DbiStats;
use gsdram_cache::prefetch::PrefetchStats;
use gsdram_core::stats::{ReportStats, StatsNode};
use gsdram_dram::controller::ControllerStats;
use gsdram_dram::energy::EnergyBreakdown;
use gsdram_telemetry::Histogram;

use crate::bridge::ChannelReport;
use crate::config::SystemConfig;
use crate::energy::EnergyReport;
use crate::exec::StopWhen;
use crate::machine::Machine;
use crate::ops::Program;

/// Everything measured during one [`Machine::run`](crate::Machine::run).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock CPU cycles from run start to the stop condition.
    pub cpu_cycles: u64,
    /// Per-core finish (or cutoff) times in CPU cycles.
    pub core_cycles: Vec<u64>,
    /// Total operations executed (all cores).
    pub ops: u64,
    /// Memory operations executed (loads + stores).
    pub mem_ops: u64,
    /// Per-core L1 statistics.
    pub l1: Vec<CacheStats>,
    /// Shared L2 statistics.
    pub l2: CacheStats,
    /// Memory controller statistics, merged over all channels.
    pub dram: ControllerStats,
    /// Per-channel telemetry (routed load, controller counters,
    /// energy). Always populated; emitted as a `dram_channels` subtree
    /// only for multi-channel machines, so single-channel figure JSON
    /// is byte-identical to the pre-channel era. The per-channel
    /// entries merge exactly to the `dram`/`dram_energy` totals (the
    /// merge-exactness test pins this).
    pub dram_channels: Vec<ChannelReport>,
    /// Per-channel read-latency histograms (arrival to data-burst
    /// completion, in memory cycles). Maintained unconditionally by
    /// the controllers — present whether or not an observer was
    /// attached, so report JSON never depends on observation.
    pub dram_read_latency: Vec<Histogram>,
    /// Per-channel DRAM queue-depth histograms (reads + writes
    /// outstanding, sampled at each column-command retire).
    pub dram_queue_depth: Vec<Histogram>,
    /// DRAM energy breakdown.
    pub dram_energy: EnergyBreakdown,
    /// CPU + DRAM energy totals.
    pub energy: EnergyReport,
    /// Per-core `Program::progress()` at stop.
    pub progress: Vec<u64>,
    /// Per-core `Program::result()` at stop.
    pub results: Vec<u64>,
    /// Per-core stride-prefetcher statistics.
    pub prefetch: Vec<PrefetchStats>,
    /// Dirty-Block-Index statistics (coherence fast-path counters).
    pub dbi: DbiStats,
}

impl RunReport {
    /// Execution time in seconds at the configured clock.
    pub fn seconds(&self, cfg: &SystemConfig) -> f64 {
        cfg.seconds(self.cpu_cycles)
    }
}

impl ReportStats for RunReport {
    /// The whole run as one stats tree:
    ///
    /// ```text
    /// <name>: cpu_cycles, ops, mem_ops
    ///   cores:   core0..coreN (cycles, progress, result)
    ///   l1[i]:   cache counters per core
    ///   l2:      cache counters
    ///   dram:    controller counters
    ///   dram_hist: per-channel read-latency / queue-depth histograms
    ///   dram_energy: energy breakdown (nJ)
    ///   energy:  CPU + DRAM totals (mJ)
    ///   prefetch[i]: per-core prefetcher counters
    ///   dbi:     Dirty-Block-Index counters
    /// ```
    fn stats_node(&self, name: &str) -> StatsNode {
        let mut cores = StatsNode::new("cores");
        for (i, cycles) in self.core_cycles.iter().enumerate() {
            cores = cores.child(
                StatsNode::new(format!("core{i}"))
                    .counter("cycles", *cycles)
                    .counter("progress", self.progress.get(i).copied().unwrap_or(0))
                    .counter("result", self.results.get(i).copied().unwrap_or(0)),
            );
        }
        StatsNode::new(name)
            .counter("cpu_cycles", self.cpu_cycles)
            .counter("ops", self.ops)
            .counter("mem_ops", self.mem_ops)
            .child(cores)
            .children_from(
                self.l1
                    .iter()
                    .enumerate()
                    .map(|(i, s)| s.stats_node(&format!("l1_{i}"))),
            )
            .child(self.l2.stats_node("l2"))
            .child(self.dram.stats_node("dram"))
            .children_from(
                // Single-channel machines skip the subtree entirely:
                // the frozen single-channel baselines must not move.
                (self.dram_channels.len() > 1).then(|| {
                    let mut n = StatsNode::new("dram_channels");
                    for (ch, r) in self.dram_channels.iter().enumerate() {
                        n = n.child(r.stats_node(&format!("ch{ch}")));
                    }
                    n
                }),
            )
            .child({
                let mut hist = StatsNode::new("dram_hist");
                for (ch, h) in self.dram_read_latency.iter().enumerate() {
                    hist = hist.child(h.stats_node(&format!("read_latency_ch{ch}")));
                }
                for (ch, h) in self.dram_queue_depth.iter().enumerate() {
                    hist = hist.child(h.stats_node(&format!("queue_depth_ch{ch}")));
                }
                hist
            })
            .child(self.dram_energy.stats_node("dram_energy"))
            .child(self.energy.stats_node("energy"))
            .children_from(
                self.prefetch
                    .iter()
                    .enumerate()
                    .map(|(i, s)| s.stats_node(&format!("prefetch_{i}"))),
            )
            .child(self.dbi.stats_node("dbi"))
    }
}

impl Machine {
    /// Assembles the [`RunReport`] for a run that started at `start`
    /// and ended on `stop`.
    pub(crate) fn report(
        &self,
        stop: StopWhen,
        start: u64,
        programs: &[&mut dyn Program],
    ) -> RunReport {
        let core_cycles: Vec<u64> = self.cores.iter().map(|c| c.time - start).collect();
        let cpu_cycles = match stop {
            StopWhen::AllDone => core_cycles.iter().copied().max().unwrap_or(0),
            StopWhen::CoreDone(i) => core_cycles[i],
        };
        let ops: u64 = self.cores.iter().map(|c| c.ops).sum();
        let mem_ops: u64 = self.cores.iter().map(|c| c.mem_ops).sum();
        let l1: Vec<CacheStats> = self.hier.l1.iter().map(|c| c.stats()).collect();
        let l2 = self.hier.l2.stats();
        let dram = self.bridge.stats();
        let dram_energy = self.bridge.energy();
        let energy = self.cpu_energy.report(
            &self.cfg,
            cpu_cycles,
            ops,
            l1.iter().map(|s| s.hits + s.misses).sum(),
            l2.hits + l2.misses,
            dram_energy,
        );
        RunReport {
            cpu_cycles,
            core_cycles,
            ops,
            mem_ops,
            l1,
            l2,
            dram,
            dram_channels: self.bridge.channel_reports(),
            dram_read_latency: self.bridge.read_latency_hists(),
            dram_queue_depth: self.bridge.queue_depth_hists(),
            dram_energy,
            energy,
            progress: programs.iter().map(|p| p.progress()).collect(),
            results: programs.iter().map(|p| p.result()).collect(),
            prefetch: self.hier.prefetchers.iter().map(|p| p.stats()).collect(),
            dbi: self.coherence.dbi.stats(),
        }
    }
}
