//! The end-to-end simulated machine (paper §4, §5).
//!
//! A [`Machine`] is the Table 1 system: 1–2 in-order 4 GHz cores with
//! private pattern-tagged L1s, a shared L2, a stride prefetcher, an
//! FR-FCFS DDR3-1600 memory controller, and a GS-DRAM(8,3,3) module
//! holding the actual data. Programs ([`crate::ops::Program`]) drive it
//! with `pattload`/`pattstore`/compute operations; the machine performs
//! both the *timing* (cycle accounting through caches and DRAM) and the
//! *function* (real data moves through the shuffle/CTL datapath), so
//! results can be verified bit-for-bit while latency, bandwidth and
//! energy are measured.
//!
//! The machine itself is a thin composition shell over port-connected
//! components (see `docs/ARCHITECTURE.md` for the picture):
//!
//! - [`crate::exec`] — the core scheduler ([`Machine::run`]'s loop);
//! - [`crate::hier`] — L1s/L2/prefetchers and the demand access path;
//! - [`crate::coherence`] — the §4.1 pattern-overlap rules + DBI;
//! - [`crate::bridge`] — controllers, the GS-DRAM module, delivery;
//! - [`crate::report`] — end-of-run statistics assembly.
//!
//! Cross-component traffic that must stay ordered (dirty evictions on
//! their way to DRAM, the line moving between DRAM and the caches)
//! flows through machine-owned scratch buffers, so the steady-state
//! access path does not allocate. Every component announces its actions
//! on the machine's [`EventHub`]; attach an observer with
//! [`Machine::attach_observer`] to trace a run (an unobserved machine
//! pays one branch per event site).

use gsdram_cache::cache::EvictedLine;
use gsdram_core::port::{EventHub, EventSink};
use gsdram_core::time::TimeFold;
use gsdram_core::PatternId;
use gsdram_dram::controller::Completion;

use crate::bridge::DramBridge;
use crate::coherence::CoherenceEngine;
use crate::config::SystemConfig;
use crate::energy::CpuEnergyModel;
use crate::exec::CoreSet;
use crate::hier::CacheHier;
use crate::page::PageTable;

pub use crate::exec::StopWhen;
pub use crate::report::RunReport;

/// The simulated system. See the [module docs](self) for the overview.
#[derive(Debug)]
pub struct Machine {
    pub(crate) cfg: SystemConfig,
    pub(crate) pages: PageTable,
    pub(crate) cores: CoreSet,
    pub(crate) hier: CacheHier,
    pub(crate) coherence: CoherenceEngine,
    pub(crate) bridge: DramBridge,
    pub(crate) cpu_energy: CpuEnergyModel,
    pub(crate) events: EventHub,
    /// Dirty lines evicted from the hierarchy, in eviction order,
    /// awaiting their DRAM writeback (drained eagerly; non-empty only
    /// within one access/delivery step).
    pub(crate) wb: Vec<EvictedLine>,
    /// Scratch for one line's words moving between DRAM and the caches.
    pub(crate) line_buf: Vec<u64>,
    /// Scratch for draining controller completions without a per-poll
    /// allocation (non-empty only within one delivery step).
    pub(crate) comp_buf: Vec<Completion>,
}

impl Machine {
    /// Builds the machine described by `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        let pages = PageTable::new(cfg.memory_bytes as u64, cfg.row_bytes());
        let cores = CoreSet::new(cfg.cores);
        let hier = CacheHier::new(&cfg);
        let coherence = CoherenceEngine::new(&cfg);
        let bridge = DramBridge::new(&cfg);
        Machine {
            cfg,
            pages,
            cores,
            hier,
            coherence,
            bridge,
            cpu_energy: CpuEnergyModel::default(),
            events: EventHub::new(),
            wb: Vec::new(),
            line_buf: Vec::new(),
            comp_buf: Vec::new(),
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The `pattmalloc` allocator (paper §4.3).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.pages
    }

    /// Allocates `bytes` of pattern-capable memory (§4.3) and returns its
    /// base address.
    pub fn pattmalloc(&mut self, bytes: u64, shuffle: bool, pattern: PatternId) -> u64 {
        self.pages.pattmalloc(bytes, shuffle, pattern)
    }

    /// Allocates plain memory.
    pub fn malloc(&mut self, bytes: u64) -> u64 {
        self.pages.malloc(bytes)
    }

    /// The exact next CPU cycle at which the machine's state can
    /// change: the global fold of every component horizon — the
    /// earliest runnable core's clock and, per channel, the
    /// controller's next command or pending completion, converted to
    /// CPU time. `None` when the whole machine is quiescent (no
    /// runnable core, nothing pending in memory, refresh disabled).
    ///
    /// This is the machine-level face of the time-skip contract in
    /// [`gsdram_core::time`]: between now and the returned cycle no
    /// component's observable state changes without new input.
    pub fn next_event(&self) -> Option<u64> {
        let mut fold = TimeFold::new();
        fold.fold_opt(self.cores.next_ready_time());
        fold.fold_opt(self.bridge.next_event().map(|m| self.bridge.to_cpu(m)));
        fold.earliest()
    }

    /// Attaches an observer that sees every [`SimEvent`] the components
    /// emit, replacing (and returning) any previous one.
    ///
    /// [`SimEvent`]: gsdram_core::port::SimEvent
    pub fn attach_observer(&mut self, sink: Box<dyn EventSink>) -> Option<Box<dyn EventSink>> {
        self.events.attach(sink)
    }

    /// Detaches and returns the current observer, if any.
    pub fn detach_observer(&mut self) -> Option<Box<dyn EventSink>> {
        self.events.detach()
    }

    /// Writes `value` at `addr` directly into the DRAM module (bypassing
    /// caches and timing) — initialisation convenience.
    pub fn poke(&mut self, addr: u64, value: u64) {
        self.bridge.poke(&self.pages, addr, value);
    }

    /// Reads the value at `addr` from the DRAM module, *ignoring* cached
    /// dirty data. Call [`Machine::drain_caches`] first for an up-to-date
    /// view.
    pub fn peek(&self, addr: u64) -> u64 {
        self.bridge.peek(&self.pages, addr)
    }

    /// Functionally writes back every dirty line (L2 first, then the
    /// L1s, so newer L1 data wins) to the DRAM module and leaves the
    /// caches clean, so [`Machine::peek`] observes the programs' final
    /// state.
    pub fn drain_caches(&mut self) {
        for (key, data) in self.hier.drain_dirty() {
            self.coherence.mark_clean(key);
            self.bridge.write_line(&self.pages, key, &data);
        }
    }

    /// Writes an evicted dirty line back to DRAM: clears its DBI bit,
    /// performs the functional write, and enqueues the timing write(s).
    fn dram_write(&mut self, ev: EvictedLine, at_cpu: u64) {
        // The line's data reaches DRAM here: its DBI dirty bit clears.
        self.coherence.mark_clean(ev.key);
        self.bridge.write_line(&self.pages, ev.key, &ev.data);
        self.bridge.enqueue_write(ev.key, at_cpu, &mut self.events);
    }

    /// Flushes every pending writeback collected by the hierarchy or
    /// coherence engine to DRAM, in eviction order, at `at_cpu`.
    pub(crate) fn drain_writebacks(&mut self, at_cpu: u64) {
        if self.wb.is_empty() {
            return;
        }
        let mut wb = std::mem::take(&mut self.wb);
        for ev in wb.drain(..) {
            self.dram_write(ev, at_cpu);
        }
        debug_assert!(self.wb.is_empty(), "writebacks must not cascade");
        self.wb = wb;
    }
}
