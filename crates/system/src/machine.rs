//! The end-to-end simulated machine (paper §4, §5).
//!
//! A [`Machine`] is the Table 1 system: 1–2 in-order 4 GHz cores with
//! private pattern-tagged L1s, a shared L2, a stride prefetcher, an
//! FR-FCFS DDR3-1600 memory controller, and a GS-DRAM(8,3,3) module
//! holding the actual data. Programs ([`crate::ops::Program`]) drive it
//! with `pattload`/`pattstore`/compute operations; the machine performs
//! both the *timing* (cycle accounting through caches and DRAM) and the
//! *function* (real data moves through the shuffle/CTL datapath), so
//! results can be verified bit-for-bit while latency, bandwidth and
//! energy are measured.
//!
//! Coherence follows §4.1: every line is tagged with its pattern; each
//! page allows only the default and one alternate pattern; dirty
//! other-pattern overlapping lines are flushed before a fetch; a store
//! invalidates the (at most `chips`) overlapping other-pattern lines.

use std::collections::HashMap;

use gsdram_cache::cache::{CacheStats, EvictedLine, LineKey, SetAssocCache};
use gsdram_cache::dbi::DbiStats;
use gsdram_cache::dbi::DirtyBlockIndex;
use gsdram_cache::overlap::OverlapCalc;
use gsdram_cache::prefetch::{PrefetchStats, StridePrefetcher};
use gsdram_core::stats::{ReportStats, StatsNode};
use gsdram_core::{ColumnId, Geometry, GsModule, PatternId, RowId};
use gsdram_dram::controller::{
    AccessKind, Completion, ControllerStats, MemController, MemRequest, ReqId,
};
use gsdram_dram::energy::EnergyBreakdown;
use gsdram_dram::mapping::AddressMap;

use crate::config::{GatherSupport, SystemConfig};
use crate::energy::{CpuEnergyModel, EnergyReport};
use crate::ops::{Op, Program};
use crate::page::PageTable;

fn sum_stats(a: ControllerStats, b: ControllerStats) -> ControllerStats {
    ControllerStats {
        reads: a.reads + b.reads,
        writes: a.writes + b.writes,
        row_hits: a.row_hits + b.row_hits,
        row_closed: a.row_closed + b.row_closed,
        row_conflicts: a.row_conflicts + b.row_conflicts,
        activates: a.activates + b.activates,
        precharges: a.precharges + b.precharges,
        refreshes: a.refreshes + b.refreshes,
        total_read_latency: a.total_read_latency + b.total_read_latency,
        bus_busy_cycles: a.bus_busy_cycles + b.bus_busy_cycles,
    }
}

fn sum_energy(a: EnergyBreakdown, b: EnergyBreakdown) -> EnergyBreakdown {
    EnergyBreakdown {
        activation_nj: a.activation_nj + b.activation_nj,
        read_nj: a.read_nj + b.read_nj,
        write_nj: a.write_nj + b.write_nj,
        refresh_nj: a.refresh_nj + b.refresh_nj,
        background_nj: a.background_nj + b.background_nj,
        io_nj: a.io_nj + b.io_nj,
    }
}

/// When a [`Machine::run`] ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopWhen {
    /// All programs have returned `None`.
    AllDone,
    /// The given core's program finished (other cores are cut off there —
    /// the HTAP methodology of §5.1).
    CoreDone(usize),
}

/// Everything measured during one [`Machine::run`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock CPU cycles from run start to the stop condition.
    pub cpu_cycles: u64,
    /// Per-core finish (or cutoff) times in CPU cycles.
    pub core_cycles: Vec<u64>,
    /// Total operations executed (all cores).
    pub ops: u64,
    /// Memory operations executed (loads + stores).
    pub mem_ops: u64,
    /// Per-core L1 statistics.
    pub l1: Vec<CacheStats>,
    /// Shared L2 statistics.
    pub l2: CacheStats,
    /// Memory controller statistics.
    pub dram: ControllerStats,
    /// DRAM energy breakdown.
    pub dram_energy: EnergyBreakdown,
    /// CPU + DRAM energy totals.
    pub energy: EnergyReport,
    /// Per-core `Program::progress()` at stop.
    pub progress: Vec<u64>,
    /// Per-core `Program::result()` at stop.
    pub results: Vec<u64>,
    /// Per-core stride-prefetcher statistics.
    pub prefetch: Vec<PrefetchStats>,
    /// Dirty-Block-Index statistics (coherence fast-path counters).
    pub dbi: DbiStats,
}

impl RunReport {
    /// Execution time in seconds at the configured clock.
    pub fn seconds(&self, cfg: &SystemConfig) -> f64 {
        cfg.seconds(self.cpu_cycles)
    }
}

impl ReportStats for RunReport {
    /// The whole run as one stats tree:
    ///
    /// ```text
    /// <name>: cpu_cycles, ops, mem_ops
    ///   cores:   core0..coreN (cycles, progress, result)
    ///   l1[i]:   cache counters per core
    ///   l2:      cache counters
    ///   dram:    controller counters
    ///   dram_energy: energy breakdown (nJ)
    ///   energy:  CPU + DRAM totals (mJ)
    ///   prefetch[i]: per-core prefetcher counters
    ///   dbi:     Dirty-Block-Index counters
    /// ```
    fn stats_node(&self, name: &str) -> StatsNode {
        let mut cores = StatsNode::new("cores");
        for (i, cycles) in self.core_cycles.iter().enumerate() {
            cores = cores.child(
                StatsNode::new(format!("core{i}"))
                    .counter("cycles", *cycles)
                    .counter("progress", self.progress.get(i).copied().unwrap_or(0))
                    .counter("result", self.results.get(i).copied().unwrap_or(0)),
            );
        }
        StatsNode::new(name)
            .counter("cpu_cycles", self.cpu_cycles)
            .counter("ops", self.ops)
            .counter("mem_ops", self.mem_ops)
            .child(cores)
            .children_from(
                self.l1
                    .iter()
                    .enumerate()
                    .map(|(i, s)| s.stats_node(&format!("l1_{i}"))),
            )
            .child(self.l2.stats_node("l2"))
            .child(self.dram.stats_node("dram"))
            .child(self.dram_energy.stats_node("dram_energy"))
            .child(self.energy.stats_node("energy"))
            .children_from(
                self.prefetch
                    .iter()
                    .enumerate()
                    .map(|(i, s)| s.stats_node(&format!("prefetch_{i}"))),
            )
            .child(self.dbi.stats_node("dbi"))
    }
}

#[derive(Debug, Clone)]
struct CoreState {
    time: u64,
    waiting: bool,
    done: bool,
    ops: u64,
    mem_ops: u64,
}

#[derive(Debug, Clone, Copy)]
struct Waiter {
    core: usize,
    word: usize,
    wide: bool,
    store: Option<u64>,
}

#[derive(Debug, Clone)]
struct Outstanding {
    key: LineKey,
    shuffled: bool,
    demand: bool,
    waiters: Vec<Waiter>,
    /// Sub-requests still in flight (1 for GS-DRAM; the number of
    /// covered lines for an Impulse gather).
    remaining: usize,
    /// Completion time of the latest finished sub-request (mem cycles).
    done_at: u64,
}

/// The simulated system. See the [module docs](self) for the overview.
#[derive(Debug)]
pub struct Machine {
    cfg: SystemConfig,
    module: GsModule,
    pages: PageTable,
    overlap: OverlapCalc,
    map: AddressMap,
    controllers: Vec<MemController>,
    l2: SetAssocCache,
    l1: Vec<SetAssocCache>,
    prefetchers: Vec<StridePrefetcher>,
    cores: Vec<CoreState>,
    outstanding: HashMap<ReqId, Outstanding>,
    by_key: HashMap<LineKey, ReqId>,
    /// Maps each DRAM sub-request to its logical fetch.
    parent_of: HashMap<ReqId, ReqId>,
    next_req: ReqId,
    cpu_energy: CpuEnergyModel,
    /// Dirty-Block Index (§4.1): per-(DRAM row, pattern) dirty bitmaps,
    /// the fast path for the flush-before-fetch coherence check. Kept as
    /// a conservative superset of the caches' dirty lines; bits clear
    /// when data reaches the DRAM module.
    dbi: DirtyBlockIndex,
}

impl Machine {
    /// Builds the machine described by `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        let rows = cfg.memory_bytes / cfg.row_bytes() as usize;
        let geom = Geometry::ddr3_row(&cfg.gsdram, rows.max(1)).expect("valid geometry");
        let module = GsModule::new(cfg.gsdram.clone(), geom);
        let pages = PageTable::new(cfg.memory_bytes as u64, cfg.row_bytes());
        let overlap = OverlapCalc::new(cfg.gsdram.clone(), cfg.l2.line_bytes as u64, 128);
        let map = AddressMap::with_ranks(
            cfg.l2.line_bytes as u64,
            128,
            cfg.controller.banks as u64,
            cfg.controller.ranks as u64,
            gsdram_dram::mapping::Interleave::ColumnFirst,
        );
        let controllers = (0..cfg.channels.max(1))
            .map(|_| MemController::new(cfg.controller.clone()))
            .collect();
        let l2 = SetAssocCache::new(cfg.l2);
        let l1 = (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l1)).collect();
        let prefetchers = (0..cfg.cores)
            .map(|_| StridePrefetcher::degree4())
            .collect();
        let cores = (0..cfg.cores)
            .map(|_| CoreState {
                time: 0,
                waiting: false,
                done: false,
                ops: 0,
                mem_ops: 0,
            })
            .collect();
        Machine {
            cfg,
            module,
            pages,
            overlap,
            map,
            controllers,
            l2,
            l1,
            prefetchers,
            cores,
            outstanding: HashMap::new(),
            by_key: HashMap::new(),
            parent_of: HashMap::new(),
            next_req: 0,
            cpu_energy: CpuEnergyModel::default(),
            dbi: DirtyBlockIndex::table1(),
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The `pattmalloc` allocator (paper §4.3).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.pages
    }

    /// Allocates `bytes` of pattern-capable memory (§4.3) and returns its
    /// base address.
    pub fn pattmalloc(&mut self, bytes: u64, shuffle: bool, pattern: PatternId) -> u64 {
        self.pages.pattmalloc(bytes, shuffle, pattern)
    }

    /// Allocates plain memory.
    pub fn malloc(&mut self, bytes: u64) -> u64 {
        self.pages.malloc(bytes)
    }

    /// The channel serving `addr` and the channel-local address
    /// (row-granularity interleave: channel bits sit just above the
    /// row-offset bits, so one DRAM row — and hence every gathered
    /// line — stays on one channel).
    fn channel_of(&self, addr: u64) -> (usize, u64) {
        let channels = self.controllers.len() as u64;
        let rb = self.overlap.row_bytes();
        let row = addr / rb;
        let channel = (row % channels) as usize;
        let local = (row / channels) * rb + addr % rb;
        (channel, local)
    }

    fn row_col(&self, addr: u64) -> (RowId, ColumnId, usize) {
        let rb = self.overlap.row_bytes();
        let row = (addr / rb) as u32;
        let off = addr % rb;
        (
            RowId(row),
            ColumnId((off / 64) as u32),
            ((off % 64) / 8) as usize,
        )
    }

    /// Writes `value` at `addr` directly into the DRAM module (bypassing
    /// caches and timing) — initialisation convenience.
    pub fn poke(&mut self, addr: u64, value: u64) {
        let shuffled = self.pages.info(addr).shuffle;
        let (row, col, word) = self.row_col(addr);
        let element = col.0 as usize * self.cfg.gsdram.chips() + word;
        self.module
            .write_element(row, element, shuffled, value)
            .expect("poke within modelled memory");
    }

    /// Reads the value at `addr` from the DRAM module, *ignoring* cached
    /// dirty data. Call [`Machine::drain_caches`] first for an up-to-date
    /// view.
    pub fn peek(&self, addr: u64) -> u64 {
        let shuffled = self.pages.info(addr).shuffle;
        let (row, col, word) = self.row_col(addr);
        let element = col.0 as usize * self.cfg.gsdram.chips() + word;
        self.module
            .read_element(row, element, shuffled)
            .expect("peek within modelled memory")
    }

    /// Functionally writes back every dirty line (all L1s, then L2) to
    /// the DRAM module and leaves the caches clean, so
    /// [`Machine::peek`] observes the programs' final state.
    pub fn drain_caches(&mut self) {
        // L2 dirty lines are always older than L1 dirty lines of the
        // same key, so write L2 first and let L1 data win.
        let mut dirty: Vec<(LineKey, Vec<u64>)> = Vec::new();
        for key in self.l2.resident_keys() {
            if self.l2.is_dirty(key) {
                let ev = self.l2.invalidate(key).expect("resident");
                dirty.push((ev.key, ev.data));
            }
        }
        for l1 in &mut self.l1 {
            for key in l1.resident_keys() {
                if l1.is_dirty(key) {
                    let ev = l1.invalidate(key).expect("resident");
                    dirty.push((ev.key, ev.data));
                }
            }
        }
        for (key, data) in dirty {
            self.write_line_to_module(key, &data);
        }
    }

    /// Which word-address semantics a line uses: under GS-DRAM the
    /// hardware shuffle/CTL path (page shuffle flag); under Impulse the
    /// controller gathers the application-level stride regardless of
    /// the (commodity, unshuffled) module layout.
    fn addr_semantics(&self, key: LineKey) -> bool {
        let shuffled = self.pages.info(key.addr).shuffle;
        shuffled || (self.cfg.gather == GatherSupport::Impulse && !key.pattern.is_default())
    }

    fn write_line_to_module(&mut self, key: LineKey, data: &[u64]) {
        // The line's data reaches DRAM here: its DBI dirty bit clears.
        self.dbi.mark_clean(key);
        let shuffled = self.pages.info(key.addr).shuffle;
        let sem = self.addr_semantics(key);
        let addrs = self.overlap.word_addresses(key, sem);
        for (a, v) in addrs.iter().zip(data) {
            let (row, col, word) = self.row_col(*a);
            let element = col.0 as usize * self.cfg.gsdram.chips() + word;
            self.module
                .write_element(row, element, shuffled, *v)
                .expect("writeback within modelled memory");
        }
    }

    fn read_line_from_module(&self, key: LineKey) -> Vec<u64> {
        let shuffled = self.pages.info(key.addr).shuffle;
        let sem = self.addr_semantics(key);
        self.overlap
            .word_addresses(key, sem)
            .iter()
            .map(|a| {
                let (row, col, word) = self.row_col(*a);
                let element = col.0 as usize * self.cfg.gsdram.chips() + word;
                self.module
                    .read_element(row, element, shuffled)
                    .expect("fetch within modelled memory")
            })
            .collect()
    }

    fn alloc_req_id(&mut self) -> ReqId {
        self.next_req += 1;
        self.next_req
    }

    /// Enqueues a DRAM write for timing and performs the functional
    /// writeback. A GS-DRAM scatter is one column command; the Impulse
    /// baseline writes every covered line individually.
    fn dram_write(&mut self, ev: EvictedLine, at_cpu: u64) {
        self.write_line_to_module(ev.key, &ev.data);
        let addrs = self.fetch_sub_addrs(ev.key);
        for (a, pattern) in addrs {
            let (ch, local) = self.channel_of(a);
            let at = self
                .cfg
                .to_mem_cycles(at_cpu)
                .max(self.controllers[ch].now());
            let id = self.alloc_req_id();
            let req = MemRequest {
                id,
                loc: self.map.decompose(local),
                pattern,
                kind: AccessKind::Write,
            };
            self.controllers[ch].enqueue(req, at);
        }
    }

    /// The DRAM requests backing one logical line fetch/writeback:
    /// one pattern command under GS-DRAM; one default-pattern command
    /// per covered line under Impulse.
    fn fetch_sub_addrs(&self, key: LineKey) -> Vec<(u64, PatternId)> {
        if self.cfg.gather == GatherSupport::Impulse && !key.pattern.is_default() {
            self.overlap
                .overlapping_lines(key, PatternId::DEFAULT, true)
                .into_iter()
                .map(|k| (k.addr, PatternId::DEFAULT))
                .collect()
        } else {
            vec![(key.addr, key.pattern)]
        }
    }

    /// Enqueues the DRAM fetch(es) backing a line fetch and registers
    /// the logical outstanding entry.
    fn enqueue_fetch(
        &mut self,
        key: LineKey,
        shuffled: bool,
        demand: bool,
        waiters: Vec<Waiter>,
        at_cpu: u64,
    ) {
        let subs = self.fetch_sub_addrs(key);
        let parent = self.alloc_req_id();
        self.outstanding.insert(
            parent,
            Outstanding {
                key,
                shuffled,
                demand,
                waiters,
                remaining: subs.len(),
                done_at: 0,
            },
        );
        self.by_key.insert(key, parent);
        for (a, pattern) in subs {
            let (ch, local) = self.channel_of(a);
            let at = self
                .cfg
                .to_mem_cycles(at_cpu)
                .max(self.controllers[ch].now());
            let id = self.alloc_req_id();
            self.parent_of.insert(id, parent);
            let req = MemRequest {
                id,
                loc: self.map.decompose(local),
                pattern,
                kind: AccessKind::Read,
            };
            self.controllers[ch].enqueue(req, at);
        }
    }

    /// Handles an eviction out of L2 (dirty → DRAM write).
    fn handle_l2_eviction(&mut self, ev: Option<EvictedLine>, at_cpu: u64) {
        if let Some(ev) = ev {
            if ev.dirty {
                self.dram_write(ev, at_cpu);
            }
        }
    }

    /// Handles an eviction out of an L1: dirty lines merge into L2 (or
    /// go straight to DRAM if L2 no longer holds the line).
    fn handle_l1_eviction(&mut self, ev: Option<EvictedLine>, at_cpu: u64) {
        let Some(ev) = ev else { return };
        if !ev.dirty {
            return;
        }
        if let Some(slot) = self.l2.data_mut(ev.key) {
            slot.copy_from_slice(&ev.data);
        } else {
            let l2_ev = self.l2.fill(ev.key, ev.data.clone());
            self.l2
                .data_mut(ev.key)
                .expect("just filled")
                .copy_from_slice(&ev.data);
            self.handle_l2_eviction(l2_ev, at_cpu);
        }
    }

    /// §4.1 rule 1: before fetching `key` from DRAM, flush dirty
    /// overlapping lines of the page's other pattern from all caches.
    fn flush_overlaps_before_fetch(&mut self, key: LineKey, at_cpu: u64) {
        let info = self.pages.info(key.addr);
        // Coherence engages whenever the page supports an alternate
        // pattern — whether gathers come from the shuffle/CTL datapath
        // (GS-DRAM) or from controller-side assembly (Impulse).
        let sem = self.addr_semantics(LineKey {
            pattern: info.alt_pattern,
            ..key
        });
        if !sem || info.alt_pattern.is_default() {
            return;
        }
        let other = if key.pattern.is_default() {
            info.alt_pattern
        } else {
            PatternId::DEFAULT
        };
        // §4.1 fast path: one Dirty-Block-Index row lookup rules out the
        // common no-dirty-overlap case without touching the caches.
        if !self.dbi.row_has_dirty(key.addr, other) {
            return;
        }
        for okey in self.overlap.overlapping_lines(key, other, sem) {
            if !self.dbi.may_be_dirty(okey) {
                continue;
            }
            // Only *dirty* overlapping lines must reach DRAM before the
            // fetch; clean copies are consistent and may stay cached
            // (§4.1: "check if there are any dirty cache lines ... which
            // have a partial overlap with the cache line being fetched").
            // Flush order matters: an L2 dirty copy is always older than
            // an L1 dirty copy of the same line, so L2 goes first and a
            // flushed L1 line additionally drops any stale L2 copy.
            if self.l2.is_dirty(okey) {
                let ev = self.l2.invalidate(okey).expect("resident");
                self.dram_write(ev, at_cpu);
            }
            let mut l1_was_dirty = false;
            for c in 0..self.l1.len() {
                if self.l1[c].is_dirty(okey) {
                    let ev = self.l1[c].invalidate(okey).expect("resident");
                    self.dram_write(ev, at_cpu);
                    l1_was_dirty = true;
                }
            }
            if l1_was_dirty {
                self.l2.invalidate(okey);
            }
        }
    }

    /// §4.1 rule 2: a store to `key` invalidates overlapping lines of
    /// the other pattern everywhere (at most `chips` lines — §4.4), plus
    /// same-key copies in other cores' L1s.
    fn invalidate_overlaps_on_store(&mut self, core: usize, key: LineKey, at_cpu: u64) {
        // Every store routes through here: record the dirtied line.
        self.dbi.mark_dirty(key);
        // Same-key copies in other L1s (read-exclusive upgrade).
        for c in 0..self.l1.len() {
            if c != core {
                if let Some(ev) = self.l1[c].invalidate(key) {
                    if ev.dirty {
                        // Should not happen (two dirty copies), but stay safe.
                        self.dram_write(ev, at_cpu);
                    }
                }
            }
        }
        let info = self.pages.info(key.addr);
        let sem = self.addr_semantics(LineKey {
            pattern: info.alt_pattern,
            ..key
        });
        if !sem || info.alt_pattern.is_default() {
            return;
        }
        let other = if key.pattern.is_default() {
            info.alt_pattern
        } else {
            PatternId::DEFAULT
        };
        for okey in self.overlap.overlapping_lines(key, other, sem) {
            // L2 before L1: an L2 dirty copy is older than an L1 dirty
            // copy of the same line, so the L1 data must reach DRAM last.
            if let Some(ev) = self.l2.invalidate(okey) {
                if ev.dirty {
                    self.dram_write(ev, at_cpu);
                }
            }
            for c in 0..self.l1.len() {
                if let Some(ev) = self.l1[c].invalidate(okey) {
                    if ev.dirty {
                        self.dram_write(ev, at_cpu);
                    }
                }
            }
        }
    }

    /// Snoop: if another L1 holds `key` dirty, write it back into L2 so
    /// the requester sees fresh data.
    fn snoop_remote_dirty(&mut self, core: usize, key: LineKey, at_cpu: u64) {
        for c in 0..self.l1.len() {
            if c == core || !self.l1[c].is_dirty(key) {
                continue;
            }
            let ev = self.l1[c].invalidate(key).expect("resident");
            if let Some(slot) = self.l2.data_mut(key) {
                slot.copy_from_slice(&ev.data);
            } else {
                let data = ev.data.clone();
                let l2_ev = self.l2.fill(key, data);
                self.l2
                    .data_mut(key)
                    .expect("just filled")
                    .copy_from_slice(&ev.data);
                self.handle_l2_eviction(l2_ev, at_cpu);
            }
        }
    }

    /// Issues the stride prefetcher's predictions as L2 prefetch reads.
    fn issue_prefetches(
        &mut self,
        core: usize,
        pc: u64,
        addr: u64,
        pattern: PatternId,
        at_cpu: u64,
    ) {
        if !self.cfg.prefetch {
            return;
        }
        let targets = self.prefetchers[core].observe(pc, addr);
        for t in targets {
            if t >= self.pages.allocated() {
                continue;
            }
            if self.pages.check(t, pattern).is_err() {
                continue;
            }
            let key = LineKey::new(t, 64, pattern);
            if self.l2.contains(key) || self.by_key.contains_key(&key) {
                continue;
            }
            self.flush_overlaps_before_fetch(key, at_cpu);
            let shuffled = self.pages.info(key.addr).shuffle;
            self.enqueue_fetch(key, shuffled, false, Vec::new(), at_cpu);
        }
    }

    /// Executes one memory op for `core` at its current time. Returns
    /// `Some(value)` when the access completed synchronously (cache hit),
    /// `None` when the core is now waiting on DRAM.
    fn access(
        &mut self,
        core: usize,
        pc: u64,
        addr: u64,
        pattern: PatternId,
        wide: bool,
        store: Option<u64>,
    ) -> Option<u64> {
        let info = self
            .pages
            .check(addr, pattern)
            .unwrap_or_else(|e| panic!("{e}"));
        let key = LineKey::new(addr, 64, pattern);
        let word = ((addr % 64) / 8) as usize;
        let t0 = self.cores[core].time;
        self.cores[core].mem_ops += 1;

        // L1 lookup.
        if self.l1[core].probe(key, store.is_some()) {
            self.cores[core].time = t0 + self.cfg.l1.latency;
            let value = if let Some(v) = store {
                self.invalidate_overlaps_on_store(core, key, t0);
                let data = self.l1[core].data_mut(key).expect("hit");
                data[word] = v;
                v
            } else {
                self.l1[core].data(key).expect("hit")[word]
            };
            return Some(value);
        }

        // L1 miss: train the prefetcher, snoop remote dirty copies.
        self.issue_prefetches(core, pc, addr, pattern, t0);
        self.snoop_remote_dirty(core, key, t0);

        // L2 lookup.
        if self.l2.probe(key, false) {
            let latency = self.cfg.l1.latency + self.cfg.l2.latency;
            self.cores[core].time = t0 + latency;
            let data = self.l2.data(key).expect("hit").to_vec();
            let ev = self.l1[core].fill(key, data);
            self.handle_l1_eviction(ev, t0);
            let value = if let Some(v) = store {
                self.invalidate_overlaps_on_store(core, key, t0);
                self.l1[core].probe(key, true);
                let d = self.l1[core].data_mut(key).expect("filled");
                d[word] = v;
                v
            } else {
                self.l1[core].data(key).expect("filled")[word]
            };
            return Some(value);
        }

        // Remote clean copy? Cache-to-cache transfer through L2 pricing.
        for c in 0..self.l1.len() {
            if c != core && self.l1[c].contains(key) {
                let data = self.l1[c].data(key).expect("resident").to_vec();
                let latency = self.cfg.l1.latency + self.cfg.l2.latency;
                self.cores[core].time = t0 + latency;
                let ev = self.l1[core].fill(key, data);
                self.handle_l1_eviction(ev, t0);
                let value = if let Some(v) = store {
                    self.invalidate_overlaps_on_store(core, key, t0);
                    self.l1[core].probe(key, true);
                    let d = self.l1[core].data_mut(key).expect("filled");
                    d[word] = v;
                    v
                } else {
                    self.l1[core].data(key).expect("filled")[word]
                };
                return Some(value);
            }
        }

        // DRAM. Attach to an existing outstanding request if any.
        let miss_time = t0 + self.cfg.l1.latency + self.cfg.l2.latency;
        let waiter = Waiter {
            core,
            word,
            wide,
            store,
        };
        self.cores[core].waiting = true;
        if let Some(&id) = self.by_key.get(&key) {
            let out = self.outstanding.get_mut(&id).expect("tracked");
            out.demand = true;
            out.waiters.push(waiter);
            return None;
        }
        self.flush_overlaps_before_fetch(key, miss_time);
        self.enqueue_fetch(key, info.shuffle, true, vec![waiter], miss_time);
        None
    }

    /// Applies a completed DRAM read: fills caches, applies pending
    /// stores, wakes waiting cores, feeds loaded values to programs.
    fn deliver(&mut self, c: Completion, programs: &mut [&mut dyn Program]) {
        let Some(parent) = self.parent_of.remove(&c.id) else {
            return; // a writeback completion — nothing to do
        };
        {
            let out = self.outstanding.get_mut(&parent).expect("parent tracked");
            out.done_at = out.done_at.max(c.at);
            out.remaining -= 1;
            if out.remaining > 0 {
                return; // an Impulse gather is still collecting lines
            }
        }
        let out = self.outstanding.remove(&parent).expect("parent tracked");
        self.by_key.remove(&out.key);
        let done_cpu = self.cfg.to_cpu_cycles(out.done_at);
        let shuffle_penalty = if out.shuffled {
            self.cfg.shuffle_latency
        } else {
            0
        };

        // Fill L2 (unless a writeback landed the line there meanwhile).
        let data = if self.l2.contains(out.key) {
            self.l2.probe(out.key, false);
            self.l2.data(out.key).expect("resident").to_vec()
        } else {
            let data = self.read_line_from_module(out.key);
            let ev = self.l2.fill(out.key, data.clone());
            self.handle_l2_eviction(ev, done_cpu);
            data
        };

        for w in out.waiters {
            let wake = done_cpu + self.cfg.l1.latency + shuffle_penalty;
            if !self.l1[w.core].contains(out.key) {
                let ev = self.l1[w.core].fill(out.key, data.clone());
                self.handle_l1_eviction(ev, done_cpu);
            }
            let value = if let Some(v) = w.store {
                self.invalidate_overlaps_on_store(w.core, out.key, done_cpu);
                self.l1[w.core].probe(out.key, true);
                let d = self.l1[w.core].data_mut(out.key).expect("filled");
                d[w.word] = v;
                v
            } else {
                self.l1[w.core].data(out.key).expect("filled")[w.word]
            };
            if w.store.is_none() {
                programs[w.core].on_load_value(value);
                let _ = w.wide;
            }
            let core = &mut self.cores[w.core];
            core.waiting = false;
            core.time = core.time.max(wake);
        }
    }

    /// Advances the memory system to CPU time `t`, delivering any
    /// completions.
    fn sync_memory(&mut self, t_cpu: u64, programs: &mut [&mut dyn Program]) {
        let t_mem = self.cfg.to_mem_cycles(t_cpu);
        for ch in 0..self.controllers.len() {
            self.controllers[ch].advance(t_mem);
            for c in self.controllers[ch].take_completions(t_mem) {
                self.deliver(c, programs);
            }
        }
    }

    /// All active cores are blocked: advance DRAM until at least one
    /// demand completion is delivered.
    fn advance_until_completion(&mut self, programs: &mut [&mut dyn Program]) {
        loop {
            let mut progressed = false;
            for ch in 0..self.controllers.len() {
                let Some(t) = self.controllers[ch].advance_until_completion() else {
                    continue;
                };
                for c in self.controllers[ch].take_completions(t) {
                    self.deliver(c, programs);
                }
                progressed = true;
            }
            assert!(
                progressed,
                "deadlock: cores waiting but no memory traffic outstanding"
            );
            if self.cores.iter().any(|c| !c.done && !c.waiting) {
                return;
            }
        }
    }

    /// Runs `programs` (one per core) until `stop`, returning the
    /// measurements. Statistics are cumulative per machine; use a fresh
    /// machine per measured configuration.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len()` differs from the configured core
    /// count, or a program accesses a page with a disallowed pattern.
    pub fn run(&mut self, programs: &mut [&mut dyn Program], stop: StopWhen) -> RunReport {
        assert_eq!(programs.len(), self.cores.len(), "one program per core");
        let start = self.cores.iter().map(|c| c.time).max().unwrap_or(0);
        for c in &mut self.cores {
            c.time = start;
            c.waiting = false;
            c.done = false;
        }

        loop {
            // Stop condition.
            let stop_hit = match stop {
                StopWhen::AllDone => self.cores.iter().all(|c| c.done),
                StopWhen::CoreDone(i) => self.cores[i].done,
            };
            if stop_hit {
                break;
            }

            // Pick the earliest runnable core.
            let runnable = self
                .cores
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.done && !c.waiting)
                .min_by_key(|(_, c)| c.time)
                .map(|(i, c)| (i, c.time));

            let Some((i, t)) = runnable else {
                if self.cores.iter().all(|c| c.done) {
                    break;
                }
                self.advance_until_completion(programs);
                continue;
            };

            // Bring memory up to date; a delivered completion may wake an
            // earlier core, so re-pick.
            self.sync_memory(t, programs);
            let repick = self
                .cores
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.done && !c.waiting)
                .min_by_key(|(_, c)| c.time)
                .map(|(i, _)| i)
                .unwrap_or(i);
            let i = repick;

            match programs[i].next_op() {
                None => {
                    self.cores[i].done = true;
                }
                Some(op) => {
                    self.cores[i].ops += 1;
                    self.cores[i].time += 1; // issue slot
                    match op {
                        Op::Compute(c) => {
                            self.cores[i].time += c as u64;
                        }
                        Op::Load { pc, addr, pattern } => {
                            if let Some(v) = self.access(i, pc, addr, pattern, false, None) {
                                programs[i].on_load_value(v);
                            }
                        }
                        Op::Load16 { pc, addr, pattern } => {
                            if let Some(v) = self.access(i, pc, addr, pattern, true, None) {
                                programs[i].on_load_value(v);
                            }
                        }
                        Op::Store {
                            pc,
                            addr,
                            pattern,
                            value,
                        } => {
                            self.access(i, pc, addr, pattern, false, Some(value));
                        }
                    }
                }
            }
        }

        let core_cycles: Vec<u64> = self.cores.iter().map(|c| c.time - start).collect();
        let cpu_cycles = match stop {
            StopWhen::AllDone => core_cycles.iter().copied().max().unwrap_or(0),
            StopWhen::CoreDone(i) => core_cycles[i],
        };
        let ops: u64 = self.cores.iter().map(|c| c.ops).sum();
        let mem_ops: u64 = self.cores.iter().map(|c| c.mem_ops).sum();
        let l1: Vec<CacheStats> = self.l1.iter().map(|c| c.stats()).collect();
        let l2 = self.l2.stats();
        let dram = self
            .controllers
            .iter()
            .map(|c| c.stats())
            .fold(ControllerStats::default(), sum_stats);
        let dram_energy = self
            .controllers
            .iter()
            .map(|c| c.energy())
            .fold(EnergyBreakdown::default(), sum_energy);
        let energy = self.cpu_energy.report(
            &self.cfg,
            cpu_cycles,
            ops,
            l1.iter().map(|s| s.hits + s.misses).sum(),
            l2.hits + l2.misses,
            dram_energy,
        );
        RunReport {
            cpu_cycles,
            core_cycles,
            ops,
            mem_ops,
            l1,
            l2,
            dram,
            dram_energy,
            energy,
            progress: programs.iter().map(|p| p.progress()).collect(),
            results: programs.iter().map(|p| p.result()).collect(),
            prefetch: self.prefetchers.iter().map(|p| p.stats()).collect(),
            dbi: self.dbi.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ScriptedProgram;

    fn small_machine(cores: usize) -> Machine {
        Machine::new(SystemConfig::table1(cores, 4 << 20))
    }

    fn run_one(m: &mut Machine, p: &mut ScriptedProgram) -> RunReport {
        let mut programs: Vec<&mut dyn Program> = vec![p];
        m.run(&mut programs, StopWhen::AllDone)
    }

    #[test]
    fn load_returns_poked_value() {
        let mut m = small_machine(1);
        let base = m.malloc(4096);
        m.poke(base + 24, 777);
        let mut p = ScriptedProgram::new(vec![Op::Load {
            pc: 1,
            addr: base + 24,
            pattern: PatternId(0),
        }]);
        let r = run_one(&mut m, &mut p);
        assert_eq!(p.loaded_values(), &[777]);
        assert!(r.cpu_cycles > 0);
        assert_eq!(r.mem_ops, 1);
    }

    #[test]
    fn store_then_load_round_trips() {
        let mut m = small_machine(1);
        let base = m.malloc(4096);
        let mut p = ScriptedProgram::new(vec![
            Op::Store {
                pc: 1,
                addr: base + 8,
                pattern: PatternId(0),
                value: 31415,
            },
            Op::Load {
                pc: 2,
                addr: base + 8,
                pattern: PatternId(0),
            },
        ]);
        run_one(&mut m, &mut p);
        assert_eq!(p.loaded_values(), &[31415]);
        // After draining, DRAM holds the stored value too.
        m.drain_caches();
        assert_eq!(m.peek(base + 8), 31415);
    }

    #[test]
    fn pattern_load_gathers_strided_fields() {
        let mut m = small_machine(1);
        // Eight 8-field tuples; gather field 0 of all of them (pattern 7).
        let base = m.pattmalloc(8 * 64, true, PatternId(7));
        for t in 0..8u64 {
            for f in 0..8u64 {
                m.poke(base + t * 64 + f * 8, t * 100 + f);
            }
        }
        let ops: Vec<Op> = (0..8u64)
            .map(|k| Op::Load {
                pc: 1,
                addr: base + 8 * k,
                pattern: PatternId(7),
            })
            .collect();
        let mut p = ScriptedProgram::new(ops);
        let r = run_one(&mut m, &mut p);
        let want: Vec<u64> = (0..8).map(|t| t * 100).collect();
        assert_eq!(p.loaded_values(), &want[..]);
        // All eight values came from ONE DRAM read (7 L1 hits).
        assert_eq!(r.dram.reads, 1);
        assert_eq!(r.l1[0].hits, 7);
    }

    #[test]
    fn second_access_hits_cache() {
        let mut m = small_machine(1);
        let base = m.malloc(4096);
        let mut p = ScriptedProgram::new(vec![
            Op::Load {
                pc: 1,
                addr: base,
                pattern: PatternId(0),
            },
            Op::Load {
                pc: 2,
                addr: base + 32,
                pattern: PatternId(0),
            },
        ]);
        let r = run_one(&mut m, &mut p);
        assert_eq!(r.dram.reads, 1);
        assert_eq!(r.l1[0].hits, 1);
        assert_eq!(r.l1[0].misses, 1);
    }

    #[test]
    fn store_invalidates_overlapping_gathered_line() {
        let mut m = small_machine(1);
        let base = m.pattmalloc(8 * 64, true, PatternId(7));
        for t in 0..8u64 {
            m.poke(base + t * 64, 1000 + t);
        }
        let mut p = ScriptedProgram::new(vec![
            // Fetch the gathered field-0 line.
            Op::Load {
                pc: 1,
                addr: base,
                pattern: PatternId(7),
            },
            // Modify field 0 of tuple 3 through the default pattern.
            Op::Store {
                pc: 2,
                addr: base + 3 * 64,
                pattern: PatternId(0),
                value: 55,
            },
            // Re-read the gathered line: must see the new value.
            Op::Load {
                pc: 3,
                addr: base + 3 * 8,
                pattern: PatternId(7),
            },
        ]);
        run_one(&mut m, &mut p);
        assert_eq!(p.loaded_values(), &[1000, 55]);
    }

    #[test]
    fn gathered_store_scatters_to_memory() {
        let mut m = small_machine(1);
        let base = m.pattmalloc(8 * 64, true, PatternId(7));
        // pattstore field 0 of tuple k via the gathered line.
        let ops: Vec<Op> = (0..8u64)
            .map(|k| Op::Store {
                pc: 1,
                addr: base + 8 * k,
                pattern: PatternId(7),
                value: 90 + k,
            })
            .collect();
        let mut p = ScriptedProgram::new(ops);
        run_one(&mut m, &mut p);
        m.drain_caches();
        for t in 0..8u64 {
            assert_eq!(m.peek(base + t * 64), 90 + t, "tuple {t} field 0");
        }
    }

    #[test]
    fn compute_ops_advance_time_without_memory() {
        let mut m = small_machine(1);
        let mut p = ScriptedProgram::new(vec![Op::Compute(100), Op::Compute(100)]);
        let r = run_one(&mut m, &mut p);
        assert_eq!(r.cpu_cycles, 202); // 2 issue slots + 200 compute
        assert_eq!(r.mem_ops, 0);
        assert_eq!(r.dram.reads, 0);
    }

    #[test]
    #[should_panic(expected = "not allowed")]
    fn disallowed_pattern_faults() {
        let mut m = small_machine(1);
        let base = m.malloc(4096);
        let mut p = ScriptedProgram::new(vec![Op::Load {
            pc: 1,
            addr: base,
            pattern: PatternId(7),
        }]);
        run_one(&mut m, &mut p);
    }

    #[test]
    fn two_cores_share_data_coherently() {
        let mut m = small_machine(2);
        let base = m.malloc(4096);
        m.poke(base, 1);
        // Core 0 stores 42; core 1 spins on compute then loads.
        let mut p0 = ScriptedProgram::new(vec![Op::Store {
            pc: 1,
            addr: base,
            pattern: PatternId(0),
            value: 42,
        }]);
        let mut p1 = ScriptedProgram::new(vec![
            Op::Compute(5000),
            Op::Load {
                pc: 2,
                addr: base,
                pattern: PatternId(0),
            },
        ]);
        {
            let mut programs: Vec<&mut dyn Program> = vec![&mut p0, &mut p1];
            m.run(&mut programs, StopWhen::AllDone);
        }
        assert_eq!(p1.loaded_values(), &[42]);
    }

    #[test]
    fn prefetcher_reduces_miss_latency_for_streams() {
        let stream: Vec<Op> = (0..512u64)
            .map(|i| Op::Load {
                pc: 7,
                addr: i * 64,
                pattern: PatternId(0),
            })
            .collect();

        let mut plain = Machine::new(SystemConfig::table1(1, 4 << 20));
        plain.malloc(512 * 64);
        let mut p = ScriptedProgram::new(stream.clone());
        let r_plain = run_one(&mut plain, &mut p);

        let mut pf = Machine::new(SystemConfig::table1(1, 4 << 20).with_prefetch());
        pf.malloc(512 * 64);
        let mut p = ScriptedProgram::new(stream);
        let r_pf = run_one(&mut pf, &mut p);

        assert!(
            r_pf.cpu_cycles < r_plain.cpu_cycles,
            "prefetch {} !< plain {}",
            r_pf.cpu_cycles,
            r_plain.cpu_cycles
        );
    }

    #[test]
    fn impulse_gather_is_correct_but_costs_one_read_per_line() {
        // §7: the Impulse baseline returns the same gathered data, but
        // the controller→DRAM traffic is one read per covered line.
        let mut m = Machine::new(SystemConfig::table1(1, 4 << 20).with_impulse());
        // Commodity module: no shuffling; the controller gathers.
        let base = m.pattmalloc(8 * 64, false, PatternId(7));
        for t in 0..8u64 {
            m.poke(base + t * 64, 300 + t); // field 0 of tuple t
        }
        let ops: Vec<Op> = (0..8u64)
            .map(|k| Op::Load {
                pc: 1,
                addr: base + 8 * k,
                pattern: PatternId(7),
            })
            .collect();
        let mut p = ScriptedProgram::new(ops);
        let r = run_one(&mut m, &mut p);
        let want: Vec<u64> = (0..8).map(|t| 300 + t).collect();
        assert_eq!(p.loaded_values(), &want[..]);
        // Eight DRAM reads for the single gathered line (vs 1 for GS).
        assert_eq!(r.dram.reads, 8);
        assert_eq!(r.l1[0].hits, 7, "cache still sees one gathered line");
    }

    #[test]
    fn impulse_scatter_writes_back_every_covered_line() {
        let mut m = Machine::new(SystemConfig::table1(1, 4 << 20).with_impulse());
        let base = m.pattmalloc(8 * 64, false, PatternId(7));
        let ops: Vec<Op> = (0..8u64)
            .map(|k| Op::Store {
                pc: 1,
                addr: base + 8 * k,
                pattern: PatternId(7),
                value: 60 + k,
            })
            .collect();
        let mut p = ScriptedProgram::new(ops);
        run_one(&mut m, &mut p);
        m.drain_caches();
        for t in 0..8u64 {
            assert_eq!(m.peek(base + t * 64), 60 + t, "tuple {t} field 0");
        }
    }

    #[test]
    fn gsdram_gather_beats_impulse_on_dram_traffic() {
        let run = |impulse: bool| {
            let cfg = SystemConfig::table1(1, 4 << 20);
            let cfg = if impulse { cfg.with_impulse() } else { cfg };
            let mut m = Machine::new(cfg);
            let base = m.pattmalloc(64 * 64, !impulse, PatternId(7));
            let ops: Vec<Op> = (0..8u64)
                .flat_map(|g| {
                    (0..8u64).map(move |k| Op::Load {
                        pc: 1,
                        addr: base + g * 8 * 64 + 8 * k,
                        pattern: PatternId(7),
                    })
                })
                .collect();
            let mut p = ScriptedProgram::new(ops);
            run_one(&mut m, &mut p)
        };
        let gs = run(false);
        let imp = run(true);
        assert!(
            imp.dram.reads >= 6 * gs.dram.reads,
            "imp {} gs {}",
            imp.dram.reads,
            gs.dram.reads
        );
        assert!(imp.cpu_cycles > gs.cpu_cycles);
    }

    #[test]
    fn two_channels_speed_up_bank_parallel_streams() {
        // Two interleaved row-streaming scans: with two channels the
        // streams proceed in parallel.
        let stream: Vec<Op> = (0..512u64)
            .map(|i| Op::Load {
                pc: 7,
                addr: i * 8192,
                pattern: PatternId(0),
            })
            .collect();
        let run = |channels: usize| {
            let mut m = Machine::new(SystemConfig::table1(1, 8 << 20).with_channels(channels));
            m.malloc(512 * 8192);
            let mut p = ScriptedProgram::new(stream.clone());
            run_one(&mut m, &mut p).cpu_cycles
        };
        let one = run(1);
        let two = run(2);
        assert!(two <= one, "2 channels {two} !<= 1 channel {one}");
    }

    #[test]
    fn multi_channel_is_functionally_identical() {
        // Gathers, stores and coherence behave identically on 1, 2 and
        // 4 channels — lines never span channels.
        let run = |channels: usize| {
            let mut m = Machine::new(SystemConfig::table1(1, 8 << 20).with_channels(channels));
            // Enough tuples to spread over several DRAM rows.
            let base = m.pattmalloc(1024 * 64, true, PatternId(7));
            for t in 0..1024u64 {
                m.poke(base + t * 64, 5000 + t);
            }
            let mut ops = Vec::new();
            for grp in (0..128u64).step_by(7) {
                for k in 0..8u64 {
                    ops.push(Op::Load {
                        pc: 1,
                        addr: base + grp * 8 * 64 + 8 * k,
                        pattern: PatternId(7),
                    });
                }
                ops.push(Op::Store {
                    pc: 2,
                    addr: base + grp * 8 * 64,
                    pattern: PatternId(0),
                    value: grp,
                });
            }
            let mut p = ScriptedProgram::new(ops);
            let r = run_one(&mut m, &mut p);
            m.drain_caches();
            let image: Vec<u64> = (0..1024).map(|t| m.peek(base + t * 64)).collect();
            (r.results[0], image)
        };
        let (sum1, img1) = run(1);
        let (sum2, img2) = run(2);
        let (sum4, img4) = run(4);
        assert_eq!(sum1, sum2);
        assert_eq!(sum1, sum4);
        assert_eq!(img1, img2);
        assert_eq!(img1, img4);
    }

    #[test]
    fn htap_style_stop_cuts_off_other_core() {
        let mut m = small_machine(2);
        m.malloc(4096);
        let mut p0 = ScriptedProgram::new(vec![Op::Compute(10)]);
        // Endless-ish second program.
        let mut p1 = ScriptedProgram::new(vec![Op::Compute(1); 100_000]);
        let r = {
            let mut programs: Vec<&mut dyn Program> = vec![&mut p0, &mut p1];
            m.run(&mut programs, StopWhen::CoreDone(0))
        };
        assert!(r.cpu_cycles <= 20);
        assert!(r.progress[1] < 100_000, "core 1 must be cut off");
    }
}
