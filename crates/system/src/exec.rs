//! The core scheduler: per-core execution state and the event loop that
//! interleaves N in-order cores with the memory system.
//!
//! Each core owns a local clock; the scheduler always steps the
//! earliest runnable (not done, not waiting on DRAM) core, bringing the
//! memory system up to that core's time first so completions that wake
//! an earlier core are never missed. Memory operations leave the core
//! through the port types of [`gsdram_core::port`]: the scheduler
//! translates each [`Op`] into a [`MemReq`] and hands it to the access
//! path in [`crate::hier`].

use gsdram_core::port::{MemReq, ReqKind};

use crate::machine::Machine;
use crate::ops::{Op, Program};

/// When a [`Machine::run`] ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopWhen {
    /// All programs have returned `None`.
    AllDone,
    /// The given core's program finished (other cores are cut off there —
    /// the HTAP methodology of §5.1).
    CoreDone(usize),
}

/// One in-order core's execution state.
#[derive(Debug, Clone)]
pub(crate) struct CoreState {
    /// The core's local clock in CPU cycles.
    pub(crate) time: u64,
    /// Whether the core is blocked on an outstanding DRAM fetch.
    pub(crate) waiting: bool,
    /// Whether the core's program has finished.
    pub(crate) done: bool,
    /// Operations executed.
    pub(crate) ops: u64,
    /// Memory operations executed.
    pub(crate) mem_ops: u64,
}

/// The set of in-order cores, with the scheduling queries the run loop
/// needs.
#[derive(Debug)]
pub struct CoreSet {
    cores: Vec<CoreState>,
}

impl CoreSet {
    pub(crate) fn new(n: usize) -> Self {
        CoreSet {
            cores: (0..n)
                .map(|_| CoreState {
                    time: 0,
                    waiting: false,
                    done: false,
                    ops: 0,
                    mem_ops: 0,
                })
                .collect(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.cores.len()
    }

    pub(crate) fn core(&self, i: usize) -> &CoreState {
        &self.cores[i]
    }

    pub(crate) fn core_mut(&mut self, i: usize) -> &mut CoreState {
        &mut self.cores[i]
    }

    pub(crate) fn iter(&self) -> std::slice::Iter<'_, CoreState> {
        self.cores.iter()
    }

    /// Aligns every core to the latest local clock (consecutive `run`s
    /// share one machine) and clears waiting/done flags. Returns the
    /// common start time.
    pub(crate) fn start(&mut self) -> u64 {
        let start = self.cores.iter().map(|c| c.time).max().unwrap_or(0);
        for c in &mut self.cores {
            c.time = start;
            c.waiting = false;
            c.done = false;
        }
        start
    }

    /// The earliest runnable core and its local time.
    pub(crate) fn pick_runnable(&self) -> Option<(usize, u64)> {
        self.cores
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.done && !c.waiting)
            .min_by_key(|(_, c)| c.time)
            .map(|(i, c)| (i, c.time))
    }

    pub(crate) fn all_done(&self) -> bool {
        self.cores.iter().all(|c| c.done)
    }

    /// Whether any core can make progress without a DRAM completion.
    pub(crate) fn any_ready(&self) -> bool {
        self.cores.iter().any(|c| !c.done && !c.waiting)
    }

    /// The exact next CPU cycle a core's state can change on its own:
    /// the earliest runnable core's local clock. Waiting cores change
    /// state only through memory completions, which the bridge horizon
    /// covers (time-skip contract of `gsdram_core::time`).
    pub(crate) fn next_ready_time(&self) -> Option<u64> {
        self.pick_runnable().map(|(_, t)| t)
    }
}

impl Machine {
    /// Runs `programs` (one per core) until `stop`, returning the
    /// measurements. Statistics are cumulative per machine; use a fresh
    /// machine per measured configuration.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len()` differs from the configured core
    /// count, or a program accesses a page with a disallowed pattern.
    pub fn run(
        &mut self,
        programs: &mut [&mut dyn Program],
        stop: StopWhen,
    ) -> crate::report::RunReport {
        assert_eq!(programs.len(), self.cores.len(), "one program per core");
        let start = self.cores.start();

        loop {
            // Stop condition.
            let stop_hit = match stop {
                StopWhen::AllDone => self.cores.all_done(),
                StopWhen::CoreDone(i) => self.cores.core(i).done,
            };
            if stop_hit {
                break;
            }

            // Pick the earliest runnable core.
            let Some((i, t)) = self.cores.pick_runnable() else {
                if self.cores.all_done() {
                    break;
                }
                self.advance_until_completion(programs);
                continue;
            };

            // Bring memory up to date; a delivered completion may wake an
            // earlier core, so re-pick.
            self.sync_memory(t, programs);
            let i = self.cores.pick_runnable().map(|(i, _)| i).unwrap_or(i);

            match programs[i].next_op() {
                None => {
                    self.cores.core_mut(i).done = true;
                }
                Some(op) => {
                    let core = self.cores.core_mut(i);
                    core.ops += 1;
                    // gsdram-lint: allow(D7) the issue slot spends one cycle of dispatch bandwidth per op; it is not a stepped simulation clock
                    core.time += 1; // issue slot
                    match op {
                        Op::Compute(c) => {
                            self.cores.core_mut(i).time += c as u64;
                        }
                        Op::Load { pc, addr, pattern } => {
                            let req = MemReq {
                                pc,
                                addr,
                                pattern,
                                kind: ReqKind::Load,
                            };
                            if let Some(resp) = self.access(i, req) {
                                programs[i].on_load_value(resp.value);
                            }
                        }
                        Op::Load16 { pc, addr, pattern } => {
                            let req = MemReq {
                                pc,
                                addr,
                                pattern,
                                kind: ReqKind::LoadWide,
                            };
                            if let Some(resp) = self.access(i, req) {
                                programs[i].on_load_value(resp.value);
                            }
                        }
                        Op::Store {
                            pc,
                            addr,
                            pattern,
                            value,
                        } => {
                            let req = MemReq {
                                pc,
                                addr,
                                pattern,
                                kind: ReqKind::Store(value),
                            };
                            self.access(i, req);
                        }
                    }
                }
            }
        }

        self.report(stop, start, programs)
    }
}
