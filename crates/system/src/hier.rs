//! The cache hierarchy: private pattern-tagged L1s, the shared L2, and
//! the per-core stride prefetchers (paper §4.1, Table 1).
//!
//! [`CacheHier`] owns the SRAM side of the machine and the fill/evict
//! cascades between levels. It never talks to DRAM directly: dirty
//! DRAM-bound victims are appended, in eviction order, to a
//! caller-provided writeback list that [`Machine`]
//! drains through the [DRAM bridge](crate::bridge). Every fill and
//! eviction is announced on the machine's
//! [`EventHub`].
//!
//! The demand access path (`Machine::access`) also lives here: it
//! walks L1 → L2 → remote L1 → DRAM for one [`MemReq`], invoking the
//! [coherence engine](crate::coherence) at the §4.1 points.

use gsdram_cache::cache::{EvictedLine, LineKey, SetAssocCache};
use gsdram_cache::prefetch::StridePrefetcher;
use gsdram_core::port::{CacheLevel, EventHub, MemReq, MemResp, SimEvent};
use gsdram_core::PatternId;

use crate::bridge::Waiter;
use crate::config::SystemConfig;
use crate::machine::Machine;

/// The SRAM side of the machine: per-core L1s, the shared L2, and the
/// per-core stride prefetchers.
#[derive(Debug)]
pub struct CacheHier {
    /// Private per-core L1 caches.
    pub(crate) l1: Vec<SetAssocCache>,
    /// The shared L2.
    pub(crate) l2: SetAssocCache,
    /// Per-core stride prefetchers (train on L1 misses).
    pub(crate) prefetchers: Vec<StridePrefetcher>,
}

impl CacheHier {
    pub(crate) fn new(cfg: &SystemConfig) -> Self {
        CacheHier {
            l1: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l1)).collect(),
            l2: SetAssocCache::new(cfg.l2),
            prefetchers: (0..cfg.cores)
                .map(|_| StridePrefetcher::degree4())
                .collect(),
        }
    }

    /// Installs a clean line into L2. A dirty DRAM-bound victim goes on
    /// `wb` (in eviction order) for the caller to write back.
    pub(crate) fn fill_l2(
        &mut self,
        key: LineKey,
        data: &[u64],
        wb: &mut Vec<EvictedLine>,
        events: &mut EventHub,
    ) {
        let ev = self.l2.fill_from(key, data);
        events.emit(|| SimEvent::CacheFill {
            level: CacheLevel::L2,
            core: None,
            addr: key.addr,
            pattern: key.pattern,
        });
        if let Some(ev) = ev {
            events.emit(|| SimEvent::CacheEvict {
                level: CacheLevel::L2,
                core: None,
                addr: ev.key.addr,
                pattern: ev.key.pattern,
                dirty: ev.dirty,
            });
            if ev.dirty {
                wb.push(ev);
            }
        }
    }

    /// Merges a dirty line into L2: updates a resident copy in place, or
    /// installs a dirty copy (possibly pushing an L2 victim onto `wb`).
    fn merge_dirty_into_l2(
        &mut self,
        key: LineKey,
        data: &[u64],
        wb: &mut Vec<EvictedLine>,
        events: &mut EventHub,
    ) {
        if let Some(slot) = self.l2.data_mut(key) {
            slot.copy_from_slice(data);
        } else {
            let l2_ev = self.l2.fill_from(key, data);
            self.l2
                .data_mut(key)
                // gsdram-lint: allow(D4) fill_from on the line above made the key resident
                .expect("just filled")
                .copy_from_slice(data);
            events.emit(|| SimEvent::CacheFill {
                level: CacheLevel::L2,
                core: None,
                addr: key.addr,
                pattern: key.pattern,
            });
            if let Some(ev) = l2_ev {
                events.emit(|| SimEvent::CacheEvict {
                    level: CacheLevel::L2,
                    core: None,
                    addr: ev.key.addr,
                    pattern: ev.key.pattern,
                    dirty: ev.dirty,
                });
                if ev.dirty {
                    wb.push(ev);
                }
            }
        }
    }

    /// Installs a clean line into `core`'s L1. A dirty victim merges
    /// into L2 (or, if L2 no longer holds it, is installed there —
    /// possibly pushing an L2 victim onto `wb`).
    pub(crate) fn fill_l1(
        &mut self,
        core: usize,
        key: LineKey,
        data: &[u64],
        wb: &mut Vec<EvictedLine>,
        events: &mut EventHub,
    ) {
        let ev = self.l1[core].fill_from(key, data);
        events.emit(|| SimEvent::CacheFill {
            level: CacheLevel::L1,
            core: Some(core),
            addr: key.addr,
            pattern: key.pattern,
        });
        let Some(ev) = ev else { return };
        events.emit(|| SimEvent::CacheEvict {
            level: CacheLevel::L1,
            core: Some(core),
            addr: ev.key.addr,
            pattern: ev.key.pattern,
            dirty: ev.dirty,
        });
        if ev.dirty {
            self.merge_dirty_into_l2(ev.key, &ev.data, wb, events);
        }
    }

    /// Snoop: if another L1 holds `key` dirty, write it back into L2 so
    /// the requester sees fresh data.
    pub(crate) fn snoop_remote_dirty(
        &mut self,
        core: usize,
        key: LineKey,
        wb: &mut Vec<EvictedLine>,
        events: &mut EventHub,
    ) {
        for c in 0..self.l1.len() {
            if c == core || !self.l1[c].is_dirty(key) {
                continue;
            }
            // gsdram-lint: allow(D4) is_dirty(key) above implies the line is resident
            let ev = self.l1[c].invalidate(key).expect("resident");
            self.merge_dirty_into_l2(key, &ev.data, wb, events);
        }
    }

    /// Removes and returns every dirty line, L2 first (an L2 dirty copy
    /// is always older than an L1 dirty copy of the same key, so writing
    /// in this order lets L1 data win). Leaves the caches clean.
    pub(crate) fn drain_dirty(&mut self) -> Vec<(LineKey, Vec<u64>)> {
        let mut dirty: Vec<(LineKey, Vec<u64>)> = Vec::new();
        for key in self.l2.resident_keys() {
            if self.l2.is_dirty(key) {
                // gsdram-lint: allow(D4) is_dirty(key) above implies the line is resident
                let ev = self.l2.invalidate(key).expect("resident");
                dirty.push((ev.key, ev.data));
            }
        }
        for l1 in &mut self.l1 {
            for key in l1.resident_keys() {
                if l1.is_dirty(key) {
                    // gsdram-lint: allow(D4) is_dirty(key) above implies the line is resident
                    let ev = l1.invalidate(key).expect("resident");
                    dirty.push((ev.key, ev.data));
                }
            }
        }
        dirty
    }
}

impl Machine {
    /// Issues the stride prefetcher's predictions as L2 prefetch reads.
    fn issue_prefetches(
        &mut self,
        core: usize,
        pc: u64,
        addr: u64,
        pattern: PatternId,
        at_cpu: u64,
    ) {
        if !self.cfg.prefetch {
            return;
        }
        let targets = self.hier.prefetchers[core].observe(pc, addr);
        for t in targets {
            if t >= self.pages.allocated() {
                continue;
            }
            if self.pages.check(t, pattern).is_err() {
                continue;
            }
            let key = LineKey::new(t, 64, pattern);
            if self.hier.l2.contains(key) || self.bridge.in_flight(key) {
                continue;
            }
            self.flush_overlaps_before_fetch(key, at_cpu);
            let shuffled = self.pages.info(key.addr).shuffle;
            self.bridge
                .enqueue_fetch(key, shuffled, false, Vec::new(), at_cpu, &mut self.events);
        }
    }

    /// Copies a resident L2 line into the machine's line scratch and
    /// fills it into `core`'s L1, draining any writebacks at `at_cpu`.
    fn refill_l1_from_l2(&mut self, core: usize, key: LineKey, at_cpu: u64) {
        let mut buf = std::mem::take(&mut self.line_buf);
        buf.clear();
        // gsdram-lint: allow(D4) callers enter only after an L2 probe hit for this key
        buf.extend_from_slice(self.hier.l2.data(key).expect("hit"));
        self.hier
            .fill_l1(core, key, &buf, &mut self.wb, &mut self.events);
        self.line_buf = buf;
        self.drain_writebacks(at_cpu);
    }

    /// Executes one memory request for `core` at its current time over
    /// the core→hierarchy port. Returns `Some` when the access completed
    /// synchronously (cache hit), `None` when the core is now waiting on
    /// DRAM (the response is delivered by the bridge later).
    pub(crate) fn access(&mut self, core: usize, req: MemReq) -> Option<MemResp> {
        let info = self
            .pages
            .check(req.addr, req.pattern)
            .unwrap_or_else(|e| panic!("{e}"));
        let key = LineKey::new(req.addr, 64, req.pattern);
        let word = req.word_index(64);
        let store = req.store_value();
        let t0 = self.cores.core(core).time;
        self.cores.core_mut(core).mem_ops += 1;

        // L1 lookup.
        if self.hier.l1[core].probe(key, store.is_some()) {
            self.cores.core_mut(core).time = t0 + self.cfg.l1.latency;
            let value = if let Some(v) = store {
                self.invalidate_overlaps_on_store(core, key, t0);
                // gsdram-lint: allow(D4) probe(key) hit on the enclosing branch condition
                let data = self.hier.l1[core].data_mut(key).expect("hit");
                data[word] = v;
                v
            } else {
                // gsdram-lint: allow(D4) probe(key) hit on the enclosing branch condition
                self.hier.l1[core].data(key).expect("hit")[word]
            };
            return Some(MemResp {
                value,
                ready_at: t0 + self.cfg.l1.latency,
            });
        }

        // L1 miss: train the prefetcher, snoop remote dirty copies.
        self.issue_prefetches(core, req.pc, req.addr, req.pattern, t0);
        self.hier
            .snoop_remote_dirty(core, key, &mut self.wb, &mut self.events);
        self.drain_writebacks(t0);

        // L2 lookup.
        if self.hier.l2.probe(key, false) {
            let latency = self.cfg.l1.latency + self.cfg.l2.latency;
            self.cores.core_mut(core).time = t0 + latency;
            self.refill_l1_from_l2(core, key, t0);
            let value = if let Some(v) = store {
                self.invalidate_overlaps_on_store(core, key, t0);
                self.hier.l1[core].probe(key, true);
                // gsdram-lint: allow(D4) fill_l1/refill above installed the line for this core
                let d = self.hier.l1[core].data_mut(key).expect("filled");
                d[word] = v;
                v
            } else {
                // gsdram-lint: allow(D4) fill_l1/refill above installed the line for this core
                self.hier.l1[core].data(key).expect("filled")[word]
            };
            return Some(MemResp {
                value,
                ready_at: t0 + latency,
            });
        }

        // Remote clean copy? Cache-to-cache transfer through L2 pricing.
        for c in 0..self.hier.l1.len() {
            if c != core && self.hier.l1[c].contains(key) {
                let latency = self.cfg.l1.latency + self.cfg.l2.latency;
                self.cores.core_mut(core).time = t0 + latency;
                let mut buf = std::mem::take(&mut self.line_buf);
                buf.clear();
                // gsdram-lint: allow(D4) contains(key) held on the enclosing branch condition
                buf.extend_from_slice(self.hier.l1[c].data(key).expect("resident"));
                self.hier
                    .fill_l1(core, key, &buf, &mut self.wb, &mut self.events);
                self.line_buf = buf;
                self.drain_writebacks(t0);
                let value = if let Some(v) = store {
                    self.invalidate_overlaps_on_store(core, key, t0);
                    self.hier.l1[core].probe(key, true);
                    // gsdram-lint: allow(D4) fill_l1/refill above installed the line for this core
                    let d = self.hier.l1[core].data_mut(key).expect("filled");
                    d[word] = v;
                    v
                } else {
                    // gsdram-lint: allow(D4) fill_l1/refill above installed the line for this core
                    self.hier.l1[core].data(key).expect("filled")[word]
                };
                return Some(MemResp {
                    value,
                    ready_at: t0 + latency,
                });
            }
        }

        // DRAM. Attach to an existing outstanding request if any.
        let miss_time = t0 + self.cfg.l1.latency + self.cfg.l2.latency;
        let waiter = Waiter { core, req };
        self.cores.core_mut(core).waiting = true;
        if self.bridge.attach_waiter(key, waiter) {
            return None;
        }
        self.flush_overlaps_before_fetch(key, miss_time);
        self.bridge.enqueue_fetch(
            key,
            info.shuffle,
            true,
            vec![waiter],
            miss_time,
            &mut self.events,
        );
        None
    }
}
