//! Behavioural tests of the composed machine through its public API
//! (moved out of the old `machine.rs` unit-test module when the
//! monolith was split into components).

use gsdram_core::port::{CacheLevel, SimEvent};
use gsdram_core::PatternId;
use gsdram_system::config::SystemConfig;
use gsdram_system::machine::{Machine, RunReport, StopWhen};
use gsdram_system::ops::{Op, Program, ScriptedProgram};

fn small_machine(cores: usize) -> Machine {
    Machine::new(SystemConfig::table1(cores, 4 << 20))
}

fn run_one(m: &mut Machine, p: &mut ScriptedProgram) -> RunReport {
    let mut programs: Vec<&mut dyn Program> = vec![p];
    m.run(&mut programs, StopWhen::AllDone)
}

#[test]
fn load_returns_poked_value() {
    let mut m = small_machine(1);
    let base = m.malloc(4096);
    m.poke(base + 24, 777);
    let mut p = ScriptedProgram::new(vec![Op::Load {
        pc: 1,
        addr: base + 24,
        pattern: PatternId(0),
    }]);
    let r = run_one(&mut m, &mut p);
    assert_eq!(p.loaded_values(), &[777]);
    assert!(r.cpu_cycles > 0);
    assert_eq!(r.mem_ops, 1);
}

#[test]
fn store_then_load_round_trips() {
    let mut m = small_machine(1);
    let base = m.malloc(4096);
    let mut p = ScriptedProgram::new(vec![
        Op::Store {
            pc: 1,
            addr: base + 8,
            pattern: PatternId(0),
            value: 31415,
        },
        Op::Load {
            pc: 2,
            addr: base + 8,
            pattern: PatternId(0),
        },
    ]);
    run_one(&mut m, &mut p);
    assert_eq!(p.loaded_values(), &[31415]);
    // After draining, DRAM holds the stored value too.
    m.drain_caches();
    assert_eq!(m.peek(base + 8), 31415);
}

#[test]
fn pattern_load_gathers_strided_fields() {
    let mut m = small_machine(1);
    // Eight 8-field tuples; gather field 0 of all of them (pattern 7).
    let base = m.pattmalloc(8 * 64, true, PatternId(7));
    for t in 0..8u64 {
        for f in 0..8u64 {
            m.poke(base + t * 64 + f * 8, t * 100 + f);
        }
    }
    let ops: Vec<Op> = (0..8u64)
        .map(|k| Op::Load {
            pc: 1,
            addr: base + 8 * k,
            pattern: PatternId(7),
        })
        .collect();
    let mut p = ScriptedProgram::new(ops);
    let r = run_one(&mut m, &mut p);
    let want: Vec<u64> = (0..8).map(|t| t * 100).collect();
    assert_eq!(p.loaded_values(), &want[..]);
    // All eight values came from ONE DRAM read (7 L1 hits).
    assert_eq!(r.dram.reads, 1);
    assert_eq!(r.l1[0].hits, 7);
}

#[test]
fn second_access_hits_cache() {
    let mut m = small_machine(1);
    let base = m.malloc(4096);
    let mut p = ScriptedProgram::new(vec![
        Op::Load {
            pc: 1,
            addr: base,
            pattern: PatternId(0),
        },
        Op::Load {
            pc: 2,
            addr: base + 32,
            pattern: PatternId(0),
        },
    ]);
    let r = run_one(&mut m, &mut p);
    assert_eq!(r.dram.reads, 1);
    assert_eq!(r.l1[0].hits, 1);
    assert_eq!(r.l1[0].misses, 1);
}

#[test]
fn store_invalidates_overlapping_gathered_line() {
    let mut m = small_machine(1);
    let base = m.pattmalloc(8 * 64, true, PatternId(7));
    for t in 0..8u64 {
        m.poke(base + t * 64, 1000 + t);
    }
    let mut p = ScriptedProgram::new(vec![
        // Fetch the gathered field-0 line.
        Op::Load {
            pc: 1,
            addr: base,
            pattern: PatternId(7),
        },
        // Modify field 0 of tuple 3 through the default pattern.
        Op::Store {
            pc: 2,
            addr: base + 3 * 64,
            pattern: PatternId(0),
            value: 55,
        },
        // Re-read the gathered line: must see the new value.
        Op::Load {
            pc: 3,
            addr: base + 3 * 8,
            pattern: PatternId(7),
        },
    ]);
    run_one(&mut m, &mut p);
    assert_eq!(p.loaded_values(), &[1000, 55]);
}

#[test]
fn gathered_store_scatters_to_memory() {
    let mut m = small_machine(1);
    let base = m.pattmalloc(8 * 64, true, PatternId(7));
    // pattstore field 0 of tuple k via the gathered line.
    let ops: Vec<Op> = (0..8u64)
        .map(|k| Op::Store {
            pc: 1,
            addr: base + 8 * k,
            pattern: PatternId(7),
            value: 90 + k,
        })
        .collect();
    let mut p = ScriptedProgram::new(ops);
    run_one(&mut m, &mut p);
    m.drain_caches();
    for t in 0..8u64 {
        assert_eq!(m.peek(base + t * 64), 90 + t, "tuple {t} field 0");
    }
}

#[test]
fn compute_ops_advance_time_without_memory() {
    let mut m = small_machine(1);
    let mut p = ScriptedProgram::new(vec![Op::Compute(100), Op::Compute(100)]);
    let r = run_one(&mut m, &mut p);
    assert_eq!(r.cpu_cycles, 202); // 2 issue slots + 200 compute
    assert_eq!(r.mem_ops, 0);
    assert_eq!(r.dram.reads, 0);
}

#[test]
#[should_panic(expected = "not allowed")]
fn disallowed_pattern_faults() {
    let mut m = small_machine(1);
    let base = m.malloc(4096);
    let mut p = ScriptedProgram::new(vec![Op::Load {
        pc: 1,
        addr: base,
        pattern: PatternId(7),
    }]);
    run_one(&mut m, &mut p);
}

#[test]
fn two_cores_share_data_coherently() {
    let mut m = small_machine(2);
    let base = m.malloc(4096);
    m.poke(base, 1);
    // Core 0 stores 42; core 1 spins on compute then loads.
    let mut p0 = ScriptedProgram::new(vec![Op::Store {
        pc: 1,
        addr: base,
        pattern: PatternId(0),
        value: 42,
    }]);
    let mut p1 = ScriptedProgram::new(vec![
        Op::Compute(5000),
        Op::Load {
            pc: 2,
            addr: base,
            pattern: PatternId(0),
        },
    ]);
    {
        let mut programs: Vec<&mut dyn Program> = vec![&mut p0, &mut p1];
        m.run(&mut programs, StopWhen::AllDone);
    }
    assert_eq!(p1.loaded_values(), &[42]);
}

#[test]
fn prefetcher_reduces_miss_latency_for_streams() {
    let stream: Vec<Op> = (0..512u64)
        .map(|i| Op::Load {
            pc: 7,
            addr: i * 64,
            pattern: PatternId(0),
        })
        .collect();

    let mut plain = Machine::new(SystemConfig::table1(1, 4 << 20));
    plain.malloc(512 * 64);
    let mut p = ScriptedProgram::new(stream.clone());
    let r_plain = run_one(&mut plain, &mut p);

    let mut pf = Machine::new(SystemConfig::table1(1, 4 << 20).with_prefetch());
    pf.malloc(512 * 64);
    let mut p = ScriptedProgram::new(stream);
    let r_pf = run_one(&mut pf, &mut p);

    assert!(
        r_pf.cpu_cycles < r_plain.cpu_cycles,
        "prefetch {} !< plain {}",
        r_pf.cpu_cycles,
        r_plain.cpu_cycles
    );
}

#[test]
fn impulse_gather_is_correct_but_costs_one_read_per_line() {
    // §7: the Impulse baseline returns the same gathered data, but
    // the controller→DRAM traffic is one read per covered line.
    let mut m = Machine::new(SystemConfig::table1(1, 4 << 20).with_impulse());
    // Commodity module: no shuffling; the controller gathers.
    let base = m.pattmalloc(8 * 64, false, PatternId(7));
    for t in 0..8u64 {
        m.poke(base + t * 64, 300 + t); // field 0 of tuple t
    }
    let ops: Vec<Op> = (0..8u64)
        .map(|k| Op::Load {
            pc: 1,
            addr: base + 8 * k,
            pattern: PatternId(7),
        })
        .collect();
    let mut p = ScriptedProgram::new(ops);
    let r = run_one(&mut m, &mut p);
    let want: Vec<u64> = (0..8).map(|t| 300 + t).collect();
    assert_eq!(p.loaded_values(), &want[..]);
    // Eight DRAM reads for the single gathered line (vs 1 for GS).
    assert_eq!(r.dram.reads, 8);
    assert_eq!(r.l1[0].hits, 7, "cache still sees one gathered line");
}

#[test]
fn impulse_scatter_writes_back_every_covered_line() {
    let mut m = Machine::new(SystemConfig::table1(1, 4 << 20).with_impulse());
    let base = m.pattmalloc(8 * 64, false, PatternId(7));
    let ops: Vec<Op> = (0..8u64)
        .map(|k| Op::Store {
            pc: 1,
            addr: base + 8 * k,
            pattern: PatternId(7),
            value: 60 + k,
        })
        .collect();
    let mut p = ScriptedProgram::new(ops);
    run_one(&mut m, &mut p);
    m.drain_caches();
    for t in 0..8u64 {
        assert_eq!(m.peek(base + t * 64), 60 + t, "tuple {t} field 0");
    }
}

#[test]
fn gsdram_gather_beats_impulse_on_dram_traffic() {
    let run = |impulse: bool| {
        let cfg = SystemConfig::table1(1, 4 << 20);
        let cfg = if impulse { cfg.with_impulse() } else { cfg };
        let mut m = Machine::new(cfg);
        let base = m.pattmalloc(64 * 64, !impulse, PatternId(7));
        let ops: Vec<Op> = (0..8u64)
            .flat_map(|g| {
                (0..8u64).map(move |k| Op::Load {
                    pc: 1,
                    addr: base + g * 8 * 64 + 8 * k,
                    pattern: PatternId(7),
                })
            })
            .collect();
        let mut p = ScriptedProgram::new(ops);
        run_one(&mut m, &mut p)
    };
    let gs = run(false);
    let imp = run(true);
    assert!(
        imp.dram.reads >= 6 * gs.dram.reads,
        "imp {} gs {}",
        imp.dram.reads,
        gs.dram.reads
    );
    assert!(imp.cpu_cycles > gs.cpu_cycles);
}

#[test]
fn two_channels_speed_up_bank_parallel_streams() {
    // Two interleaved row-streaming scans: with two channels the
    // streams proceed in parallel.
    let stream: Vec<Op> = (0..512u64)
        .map(|i| Op::Load {
            pc: 7,
            addr: i * 8192,
            pattern: PatternId(0),
        })
        .collect();
    let run = |channels: usize| {
        let mut m = Machine::new(SystemConfig::table1(1, 8 << 20).with_channels(channels));
        m.malloc(512 * 8192);
        let mut p = ScriptedProgram::new(stream.clone());
        run_one(&mut m, &mut p).cpu_cycles
    };
    let one = run(1);
    let two = run(2);
    assert!(two <= one, "2 channels {two} !<= 1 channel {one}");
}

#[test]
fn multi_channel_is_functionally_identical() {
    // Gathers, stores and coherence behave identically on 1, 2 and
    // 4 channels — lines never span channels.
    let run = |channels: usize| {
        let mut m = Machine::new(SystemConfig::table1(1, 8 << 20).with_channels(channels));
        // Enough tuples to spread over several DRAM rows.
        let base = m.pattmalloc(1024 * 64, true, PatternId(7));
        for t in 0..1024u64 {
            m.poke(base + t * 64, 5000 + t);
        }
        let mut ops = Vec::new();
        for grp in (0..128u64).step_by(7) {
            for k in 0..8u64 {
                ops.push(Op::Load {
                    pc: 1,
                    addr: base + grp * 8 * 64 + 8 * k,
                    pattern: PatternId(7),
                });
            }
            ops.push(Op::Store {
                pc: 2,
                addr: base + grp * 8 * 64,
                pattern: PatternId(0),
                value: grp,
            });
        }
        let mut p = ScriptedProgram::new(ops);
        let r = run_one(&mut m, &mut p);
        m.drain_caches();
        let image: Vec<u64> = (0..1024).map(|t| m.peek(base + t * 64)).collect();
        (r.results[0], image)
    };
    let (sum1, img1) = run(1);
    let (sum2, img2) = run(2);
    let (sum4, img4) = run(4);
    assert_eq!(sum1, sum2);
    assert_eq!(sum1, sum4);
    assert_eq!(img1, img2);
    assert_eq!(img1, img4);
}

#[test]
fn htap_style_stop_cuts_off_other_core() {
    let mut m = small_machine(2);
    m.malloc(4096);
    let mut p0 = ScriptedProgram::new(vec![Op::Compute(10)]);
    // Endless-ish second program.
    let mut p1 = ScriptedProgram::new(vec![Op::Compute(1); 100_000]);
    let r = {
        let mut programs: Vec<&mut dyn Program> = vec![&mut p0, &mut p1];
        m.run(&mut programs, StopWhen::CoreDone(0))
    };
    assert!(r.cpu_cycles <= 20);
    assert!(r.progress[1] < 100_000, "core 1 must be cut off");
}

#[test]
fn observer_sees_component_events_and_detaches_cleanly() {
    use std::cell::RefCell;
    use std::rc::Rc;

    let mut m = small_machine(1);
    let base = m.pattmalloc(8 * 64, true, PatternId(7));
    for t in 0..8u64 {
        m.poke(base + t * 64, 100 + t);
    }
    let seen: Rc<RefCell<Vec<SimEvent>>> = Rc::default();
    let log = Rc::clone(&seen);
    assert!(m
        .attach_observer(Box::new(move |ev: &SimEvent| log.borrow_mut().push(*ev)))
        .is_none());

    // Gather the field-0 line, then dirty it through the default
    // pattern, then re-gather: exercises fills, DRAM traffic and the
    // §4.1 overlap machinery in one run.
    let mut p = ScriptedProgram::new(vec![
        Op::Load {
            pc: 1,
            addr: base,
            pattern: PatternId(7),
        },
        Op::Store {
            pc: 2,
            addr: base + 3 * 64,
            pattern: PatternId(0),
            value: 5,
        },
        Op::Load {
            pc: 3,
            addr: base + 3 * 8,
            pattern: PatternId(7),
        },
    ]);
    run_one(&mut m, &mut p);
    assert_eq!(p.loaded_values(), &[100, 5]);

    {
        let events = seen.borrow();
        let has = |f: &dyn Fn(&SimEvent) -> bool| events.iter().any(f);
        assert!(
            has(&|e| matches!(
                e,
                SimEvent::CacheFill {
                    level: CacheLevel::L1,
                    core: Some(0),
                    ..
                }
            )),
            "observer must see L1 fills"
        );
        assert!(
            has(&|e| matches!(
                e,
                SimEvent::CacheFill {
                    level: CacheLevel::L2,
                    ..
                }
            )),
            "observer must see L2 fills"
        );
        assert!(
            has(&|e| matches!(e, SimEvent::OverlapFlush { store: true, .. })),
            "observer must see the store's overlap invalidation"
        );
        assert!(
            has(&|e| matches!(e, SimEvent::DramEnqueue { write: false, .. })),
            "observer must see DRAM fetch enqueues"
        );
        assert!(
            has(&|e| matches!(e, SimEvent::DramComplete { .. })),
            "observer must see DRAM completions"
        );
        // Enqueues and completions pair up by id.
        for e in events.iter() {
            if let SimEvent::DramComplete { id, .. } = e {
                assert!(
                    events
                        .iter()
                        .any(|q| matches!(q, SimEvent::DramEnqueue { id: qid, .. } if qid == id)),
                    "completion {id} without a matching enqueue"
                );
            }
        }
    }

    // Detaching returns the sink and stops delivery.
    let before = seen.borrow().len();
    assert!(m.detach_observer().is_some());
    let mut p2 = ScriptedProgram::new(vec![Op::Load {
        pc: 9,
        addr: base,
        pattern: PatternId(0),
    }]);
    run_one(&mut m, &mut p2);
    assert_eq!(seen.borrow().len(), before, "no events after detach");
}

#[test]
fn observed_run_is_bit_identical_to_unobserved() {
    let run = |observe: bool| {
        let mut m = small_machine(1);
        if observe {
            m.attach_observer(Box::new(|_: &SimEvent| {}));
        }
        let base = m.pattmalloc(64 * 64, true, PatternId(7));
        for t in 0..64u64 {
            m.poke(base + t * 64, t);
        }
        let mut ops = Vec::new();
        for g in 0..8u64 {
            for k in 0..8u64 {
                ops.push(Op::Load {
                    pc: 1,
                    addr: base + g * 8 * 64 + 8 * k,
                    pattern: PatternId(7),
                });
            }
            ops.push(Op::Store {
                pc: 2,
                addr: base + g * 8 * 64,
                pattern: PatternId(0),
                value: g,
            });
        }
        let mut p = ScriptedProgram::new(ops);
        let r = run_one(&mut m, &mut p);
        (r.cpu_cycles, r.dram.reads, r.dram.writes, r.l2.hits)
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn collector_attached_run_matches_unobserved_report_json() {
    // The full telemetry collector is the heaviest realistic observer;
    // attaching it must leave the report's JSON byte-identical — the
    // same invariant the CI determinism job checks on whole figures.
    use gsdram_core::stats::ReportStats;
    use gsdram_telemetry::Collector;

    let run = |collector: Option<&Collector>| {
        let mut m = small_machine(2);
        if let Some(c) = collector {
            m.attach_observer(c.sink());
        }
        let base = m.pattmalloc(64 * 64, true, PatternId(7));
        for t in 0..64u64 {
            m.poke(base + t * 64, t);
        }
        let mut a = ScriptedProgram::new(
            (0..32u64)
                .map(|i| Op::Load {
                    pc: 1,
                    addr: base + (i % 8) * 8 * 64 + 8 * (i / 8),
                    pattern: PatternId(7),
                })
                .collect(),
        );
        let mut b = ScriptedProgram::new(
            (0..32u64)
                .map(|i| Op::Store {
                    pc: 2,
                    addr: base + (i * 136) % (64 * 64),
                    pattern: PatternId(0),
                    value: i,
                })
                .collect(),
        );
        let mut programs: Vec<&mut dyn Program> = vec![&mut a, &mut b];
        let r = m.run(&mut programs, StopWhen::AllDone);
        r.stats_node("run").to_json()
    };

    let collector = Collector::new();
    let observed = run(Some(&collector));
    let unobserved = run(None);
    assert_eq!(observed, unobserved, "observation must not perturb the run");

    // And the collector actually captured the DRAM side.
    let t = collector.snapshot();
    assert!(t.total_events() > 0);
    let lat = t.read_latency(0).expect("channel 0 latency histogram");
    assert!(lat.count() > 0, "reads must be recorded");
    assert!(t.patterns().any(|(p, _)| p == 7), "pattern-7 stats present");
    assert!(t.banks().next().is_some(), "per-bank stats present");
}

#[test]
fn report_exposes_unconditional_dram_histograms() {
    let mut m = small_machine(1);
    let base = m.malloc(1 << 16);
    let mut p = ScriptedProgram::new(
        (0..64u64)
            .map(|i| Op::Load {
                pc: 1,
                addr: base + (i * 4160) % (1 << 16),
                pattern: PatternId(0),
            })
            .collect(),
    );
    let r = run_one(&mut m, &mut p);
    // One histogram pair per channel, populated without any observer.
    assert_eq!(r.dram_read_latency.len(), r.dram_queue_depth.len());
    let reads: u64 = r.dram_read_latency.iter().map(|h| h.count()).sum();
    assert_eq!(reads, r.dram.reads);
    let lat_sum: u64 = r.dram_read_latency.iter().map(|h| h.sum()).sum();
    assert_eq!(lat_sum, r.dram.total_read_latency);
    // The stats tree carries them under dram_hist/.
    use gsdram_core::stats::ReportStats;
    let node = r.stats_node("run");
    assert_eq!(
        node.counter_at("dram_hist/read_latency_ch0/count"),
        Some(r.dram_read_latency[0].count())
    );
    assert!(node.counter_at("dram_hist/queue_depth_ch0/count").is_some());
}

/// A multi-channel workload whose loads and stores spread over many
/// DRAM rows (and hence all channels under the row-granularity
/// interleave).
fn channel_spread_ops(base: u64) -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..384u64 {
        ops.push(Op::Load {
            pc: 1,
            addr: base + (i * 8192 + (i % 7) * 64) % (6 << 20),
            pattern: PatternId(0),
        });
        if i % 3 == 0 {
            ops.push(Op::Store {
                pc: 2,
                addr: base + (i * 16384) % (6 << 20),
                pattern: PatternId(0),
                value: i,
            });
        }
    }
    ops
}

#[test]
fn per_channel_stats_merge_exactly_to_totals() {
    use gsdram_core::stats::ReportStats;
    let mut m = Machine::new(SystemConfig::table1(1, 8 << 20).with_channels(4));
    let base = m.malloc(6 << 20);
    let mut p = ScriptedProgram::new(channel_spread_ops(base));
    let r = run_one(&mut m, &mut p);

    assert_eq!(r.dram_channels.len(), 4);
    // Folding the per-channel counters reproduces the merged totals
    // exactly — nothing double-counted, nothing dropped.
    let mut dram = gsdram_dram::controller::ControllerStats::default();
    let mut energy = gsdram_dram::energy::EnergyBreakdown::default();
    let mut reads = 0u64;
    let mut writes = 0u64;
    for ch in &r.dram_channels {
        dram.merge(&ch.dram);
        energy.merge(&ch.energy);
        reads += ch.load.reads;
        writes += ch.load.writes;
    }
    assert_eq!(dram, r.dram);
    assert_eq!(energy, r.dram_energy);
    assert_eq!(reads, r.dram.reads, "routed reads == serviced reads");
    assert_eq!(writes, r.dram.writes, "routed writes == serviced writes");
    // More than one channel actually saw traffic.
    let busy = r.dram_channels.iter().filter(|c| c.dram.reads > 0).count();
    assert!(busy >= 2, "workload must spread over channels, got {busy}");

    // The stats tree exposes the per-channel subtree…
    let node = r.stats_node("run");
    assert_eq!(
        node.counter_at("dram_channels/ch0/enq_reads"),
        Some(r.dram_channels[0].load.reads)
    );
    assert!(node.counter_at("dram_channels/ch3/dram/reads").is_some());

    // …and a single-channel run must NOT have one (frozen baselines).
    let mut m1 = Machine::new(SystemConfig::table1(1, 8 << 20));
    let mut p1 = ScriptedProgram::new(channel_spread_ops(m1.malloc(6 << 20)));
    let r1 = run_one(&mut m1, &mut p1);
    assert_eq!(r1.dram_channels.len(), 1);
    let json = r1.stats_node("run").to_json_pretty();
    assert!(
        !json.contains("dram_channels"),
        "single-channel reports must stay channel-subtree-free"
    );
}

#[test]
fn sharded_run_is_byte_identical_to_serial() {
    use gsdram_core::stats::ReportStats;
    let run = |shard: bool| {
        let cfg = SystemConfig::table1(1, 8 << 20).with_channels(4);
        let cfg = if shard { cfg.with_shard() } else { cfg };
        let mut m = Machine::new(cfg);
        let base = m.malloc(6 << 20);
        let mut p = ScriptedProgram::new(channel_spread_ops(base));
        let r = run_one(&mut m, &mut p);
        m.drain_caches();
        let image: Vec<u64> = (0..64).map(|t| m.peek(base + t * 8192)).collect();
        (r.stats_node("run").to_json_pretty(), image)
    };
    let serial = run(false);
    let sharded = run(true);
    assert!(
        serial.0 == sharded.0,
        "sharded stats JSON drifted from serial"
    );
    assert_eq!(serial.1, sharded.1, "sharded memory image drifted");
}
