//! Model-based property tests: the set-associative cache against an
//! abstract reference (per-set LRU lists over a key→data map), plus
//! prefetcher and Dirty-Block-Index invariants. Cases come from a
//! deterministic PRNG ([`gsdram_core::rng::SplitMix`]) instead of
//! `proptest`, keeping the workspace dependency-free.

use gsdram_cache::cache::{CacheConfig, LineKey, SetAssocCache};
use gsdram_cache::dbi::DirtyBlockIndex;
use gsdram_cache::prefetch::StridePrefetcher;
use gsdram_core::rng::SplitMix;
use gsdram_core::PatternId;
use std::collections::HashMap;

/// The abstract cache: per-set most-recent-first key lists + contents.
struct RefCacheModel {
    cfg: CacheConfig,
    sets: Vec<Vec<LineKey>>, // MRU first
    data: HashMap<LineKey, (Vec<u64>, bool)>,
}

impl RefCacheModel {
    fn new(cfg: CacheConfig) -> Self {
        RefCacheModel {
            cfg,
            sets: vec![Vec::new(); cfg.sets()],
            data: HashMap::new(),
        }
    }

    fn set_of(&self, key: LineKey) -> usize {
        ((key.addr / self.cfg.line_bytes as u64) % self.sets.len() as u64) as usize
    }

    fn probe(&mut self, key: LineKey, write: bool) -> bool {
        let s = self.set_of(key);
        if let Some(pos) = self.sets[s].iter().position(|k| *k == key) {
            let k = self.sets[s].remove(pos);
            self.sets[s].insert(0, k);
            if write {
                self.data.get_mut(&key).expect("resident").1 = true;
            }
            true
        } else {
            false
        }
    }

    fn fill(&mut self, key: LineKey, data: Vec<u64>) -> Option<(LineKey, bool, Vec<u64>)> {
        let s = self.set_of(key);
        let victim = if self.sets[s].len() == self.cfg.assoc {
            let v = self.sets[s].pop().expect("full set");
            let (d, dirty) = self.data.remove(&v).expect("resident");
            Some((v, dirty, d))
        } else {
            None
        };
        self.sets[s].insert(0, key);
        self.data.insert(key, (data, false));
        victim
    }

    fn invalidate(&mut self, key: LineKey) -> Option<(LineKey, bool, Vec<u64>)> {
        let s = self.set_of(key);
        let pos = self.sets[s].iter().position(|k| *k == key)?;
        self.sets[s].remove(pos);
        let (d, dirty) = self.data.remove(&key).expect("resident");
        Some((key, dirty, d))
    }
}

#[derive(Debug, Clone)]
enum CacheOp {
    Probe {
        line: u8,
        pattern: bool,
        write: bool,
    },
    Fill {
        line: u8,
        pattern: bool,
    },
    Invalidate {
        line: u8,
        pattern: bool,
    },
    WriteData {
        line: u8,
        pattern: bool,
        value: u64,
    },
}

fn random_ops(rng: &mut SplitMix) -> Vec<CacheOp> {
    let n = rng.range(1, 300) as usize;
    (0..n)
        .map(|_| {
            let line = rng.below(256) as u8;
            let pattern = rng.flip();
            match rng.below(4) {
                0 => CacheOp::Probe {
                    line,
                    pattern,
                    write: rng.flip(),
                },
                1 => CacheOp::Fill { line, pattern },
                2 => CacheOp::Invalidate { line, pattern },
                _ => CacheOp::WriteData {
                    line,
                    pattern,
                    value: rng.next_u64(),
                },
            }
        })
        .collect()
}

fn key_of(line: u8, pattern: bool) -> LineKey {
    LineKey::new(
        line as u64 * 64,
        64,
        if pattern { PatternId(7) } else { PatternId(0) },
    )
}

/// The real cache behaves exactly like the abstract LRU model: same
/// hits, same eviction victims, same data, same dirty bits.
#[test]
fn cache_matches_reference_model() {
    let mut rng = SplitMix(0xCAC1);
    for case in 0..128 {
        let ops = random_ops(&mut rng);
        // Tiny cache so evictions are frequent: 4 sets × 2 ways.
        let cfg = CacheConfig {
            size_bytes: 512,
            assoc: 2,
            line_bytes: 64,
            latency: 1,
        };
        let mut real = SetAssocCache::new(cfg);
        let mut model = RefCacheModel::new(cfg);
        let mut fill_counter = 0u64;
        for op in ops {
            match op {
                CacheOp::Probe {
                    line,
                    pattern,
                    write,
                } => {
                    let key = key_of(line, pattern);
                    assert_eq!(
                        real.probe(key, write),
                        model.probe(key, write),
                        "probe {key:?}"
                    );
                }
                CacheOp::Fill { line, pattern } => {
                    let key = key_of(line, pattern);
                    if real.contains(key) {
                        continue; // double fill is a caller error by contract
                    }
                    fill_counter += 1;
                    let data = vec![fill_counter; 8];
                    let r = real.fill(key, data.clone());
                    let m = model.fill(key, data);
                    match (r, m) {
                        (None, None) => {}
                        (Some(re), Some((mk, mdirty, mdata))) => {
                            assert_eq!(re.key, mk, "victim identity");
                            assert_eq!(re.dirty, mdirty, "victim dirty bit");
                            assert_eq!(re.data, mdata, "victim data");
                        }
                        (r, m) => {
                            panic!(
                                "case {case}: eviction mismatch: {r:?} vs {:?}",
                                m.map(|x| x.0)
                            )
                        }
                    }
                }
                CacheOp::Invalidate { line, pattern } => {
                    let key = key_of(line, pattern);
                    let r = real.invalidate(key);
                    let m = model.invalidate(key);
                    assert_eq!(r.is_some(), m.is_some(), "invalidate {key:?}");
                    if let (Some(re), Some((_, mdirty, mdata))) = (r, m) {
                        assert_eq!(re.dirty, mdirty);
                        assert_eq!(re.data, mdata);
                    }
                }
                CacheOp::WriteData {
                    line,
                    pattern,
                    value,
                } => {
                    let key = key_of(line, pattern);
                    if let Some(d) = real.data_mut(key) {
                        d[3] = value;
                        model.data.get_mut(&key).expect("model resident").0[3] = value;
                        model.data.get_mut(&key).expect("model resident").1 = true;
                    } else {
                        assert!(!model.data.contains_key(&key));
                    }
                }
            }
            // Residency agrees after every step.
            for l in 0..=255u8 {
                for p in [false, true] {
                    let key = key_of(l, p);
                    assert_eq!(
                        real.contains(key),
                        model.data.contains_key(&key),
                        "residency of {key:?}"
                    );
                }
            }
        }
        // Stats sanity: the cache never holds more lines than capacity.
        let cap = cfg.sets() * cfg.assoc;
        assert!(real.resident_keys().len() <= cap);
        assert_eq!(real.resident_keys().len(), model.data.len());
    }
}

/// Prefetcher never emits the line it was trained on, never emits more
/// than `degree` lines, and always emits line-aligned addresses.
#[test]
fn prefetcher_output_bounds() {
    let mut rng = SplitMix(0xCAC2);
    for _ in 0..128 {
        let n = rng.range(1, 100) as usize;
        let mut p = StridePrefetcher::degree4();
        let mut addr: i64 = 1 << 20;
        for _ in 0..n {
            let pc = rng.below(8);
            let stride = rng.range_i64(-512, 512);
            addr = (addr + stride).max(0);
            let out = p.observe(pc, addr as u64);
            assert!(out.len() <= 4, "degree bound");
            let cur_line = (addr as u64) / 64 * 64;
            assert!(out.iter().all(|&a| a != cur_line), "self-prefetch");
            assert!(out.iter().all(|&a| a % 64 == 0), "line alignment");
        }
    }
}

/// DBI: mark/clear tracks an exact reference set; row queries are
/// precise when maintained exactly.
#[test]
fn dbi_matches_reference_set() {
    let mut rng = SplitMix(0xCAC3);
    for _ in 0..128 {
        let n = rng.range(1, 200) as usize;
        let mut dbi = DirtyBlockIndex::table1();
        let mut reference: std::collections::HashSet<LineKey> = Default::default();
        for _ in 0..n {
            let line = rng.below(64) as u8;
            let pattern = rng.flip();
            let dirty = rng.flip();
            let key = key_of(line, pattern);
            if dirty {
                dbi.mark_dirty(key);
                reference.insert(key);
            } else {
                dbi.mark_clean(key);
                reference.remove(&key);
            }
            assert_eq!(dbi.may_be_dirty(key), reference.contains(&key));
        }
        // Row-level query agrees with the reference per pattern.
        for p in [PatternId(0), PatternId(7)] {
            let any_ref = reference.iter().any(|k| k.pattern == p && k.addr < 8192);
            assert_eq!(dbi.row_has_dirty(0, p), any_ref, "{p:?}");
        }
    }
}
