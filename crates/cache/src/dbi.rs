//! The Dirty-Block Index (paper §4.1, citing Seshadri et al., ISCA'14).
//!
//! Before fetching a gathered line, the memory controller must find
//! dirty cache lines of the page's *other* pattern that overlap it. All
//! such lines live in the same DRAM row, so the paper proposes indexing
//! dirty bits *by DRAM row*: one bitmap of dirty columns per (row,
//! pattern). A single lookup then answers "any dirty overlapping
//! lines?", instead of probing every cache.
//!
//! The index is deliberately a *conservative over-approximation*: a set
//! bit means "this line may be dirty somewhere in the hierarchy"; the
//! caller confirms against the caches before acting. Bits are cleared
//! when a line's data is written back to DRAM. This makes the structure
//! safe to keep slightly stale on the clean side while never missing a
//! dirty line — the property the coherence flush relies on.

use crate::cache::LineKey;
use gsdram_core::stats::{ReportStats, StatsNode};
use gsdram_core::{cast, PatternId};
use std::collections::BTreeMap;

/// Identifies one DRAM row's worth of lines under one pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct RowKey {
    row_base: u64,
    pattern: PatternId,
}

/// Per-(row, pattern) dirty-column bitmaps.
///
/// ```
/// use gsdram_cache::{cache::LineKey, dbi::DirtyBlockIndex};
/// use gsdram_core::PatternId;
/// let mut dbi = DirtyBlockIndex::table1();
/// let key = LineKey::new(0x40, 64, PatternId(0));
/// dbi.mark_dirty(key);
/// // One lookup answers "any dirty pattern-0 lines in this DRAM row?"
/// assert!(dbi.row_has_dirty(0x1000, PatternId(0)));
/// assert!(!dbi.row_has_dirty(0x1000, PatternId(7)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DirtyBlockIndex {
    line_bytes: u64,
    cols_per_row: u64,
    rows: BTreeMap<RowKey, u128>,
    stats: DbiStats,
}

/// Operation counts, for the ablation comparing DBI lookups with
/// full-cache scans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbiStats {
    /// Bits set.
    pub marks: u64,
    /// Bits cleared.
    pub clears: u64,
    /// Row-level queries answered.
    pub row_queries: u64,
    /// Row-level queries that found no dirty lines (the fast path the
    /// paper's design exploits).
    pub empty_row_queries: u64,
}

impl ReportStats for DbiStats {
    fn stats_node(&self, name: &str) -> StatsNode {
        StatsNode::new(name)
            .counter("marks", self.marks)
            .counter("clears", self.clears)
            .counter("row_queries", self.row_queries)
            .counter("empty_row_queries", self.empty_row_queries)
    }
}

impl DirtyBlockIndex {
    /// An index over rows of `cols_per_row` lines of `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cols_per_row` exceeds 128 (one `u128` bitmap per row).
    pub fn new(line_bytes: u64, cols_per_row: u64) -> Self {
        assert!(cols_per_row <= 128, "one u128 bitmap per row");
        DirtyBlockIndex {
            line_bytes,
            cols_per_row,
            rows: BTreeMap::new(),
            stats: DbiStats::default(),
        }
    }

    /// The standard geometry: 64-byte lines, 128-line (8 KB) rows.
    pub fn table1() -> Self {
        Self::new(64, 128)
    }

    /// Operation counts so far.
    pub fn stats(&self) -> DbiStats {
        self.stats
    }

    fn split(&self, key: LineKey) -> (RowKey, u32) {
        let row_bytes = self.line_bytes * self.cols_per_row;
        let row_base = key.addr / row_bytes * row_bytes;
        let col = cast::to_u32((key.addr - row_base) / self.line_bytes);
        (
            RowKey {
                row_base,
                pattern: key.pattern,
            },
            col,
        )
    }

    /// Marks `key` (possibly) dirty.
    pub fn mark_dirty(&mut self, key: LineKey) {
        let (rk, col) = self.split(key);
        *self.rows.entry(rk).or_insert(0) |= 1u128 << col;
        self.stats.marks += 1;
    }

    /// Clears `key`'s dirty bit (its data reached DRAM).
    pub fn mark_clean(&mut self, key: LineKey) {
        let (rk, col) = self.split(key);
        if let Some(bits) = self.rows.get_mut(&rk) {
            *bits &= !(1u128 << col);
            if *bits == 0 {
                self.rows.remove(&rk);
            }
        }
        self.stats.clears += 1;
    }

    /// Whether `key` may be dirty.
    pub fn may_be_dirty(&self, key: LineKey) -> bool {
        let (rk, col) = self.split(key);
        self.rows
            .get(&rk)
            .is_some_and(|bits| bits & (1u128 << col) != 0)
    }

    /// Whether *any* line of `pattern` within the row containing `addr`
    /// may be dirty — the single-lookup fast path of §4.1.
    pub fn row_has_dirty(&mut self, addr: u64, pattern: PatternId) -> bool {
        self.stats.row_queries += 1;
        let (rk, _) = self.split(LineKey { addr, pattern });
        let hit = self.rows.contains_key(&rk);
        if !hit {
            self.stats.empty_row_queries += 1;
        }
        hit
    }

    /// The possibly-dirty lines of `pattern` within the row containing
    /// `addr`, as line keys.
    pub fn dirty_lines_in_row(&self, addr: u64, pattern: PatternId) -> Vec<LineKey> {
        let (rk, _) = self.split(LineKey { addr, pattern });
        let Some(bits) = self.rows.get(&rk) else {
            return Vec::new();
        };
        (0..cast::to_u32(self.cols_per_row))
            .filter(|c| bits & (1u128 << c) != 0)
            .map(|c| LineKey {
                addr: rk.row_base + u64::from(c) * self.line_bytes,
                pattern,
            })
            .collect()
    }

    /// Number of rows with at least one dirty bit (occupancy metric).
    pub fn occupied_rows(&self) -> usize {
        self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(addr: u64, p: u8) -> LineKey {
        LineKey::new(addr, 64, PatternId(p))
    }

    #[test]
    fn mark_query_clear_round_trip() {
        let mut dbi = DirtyBlockIndex::table1();
        assert!(!dbi.may_be_dirty(key(0x40, 0)));
        dbi.mark_dirty(key(0x40, 0));
        assert!(dbi.may_be_dirty(key(0x40, 0)));
        assert!(!dbi.may_be_dirty(key(0x80, 0)));
        dbi.mark_clean(key(0x40, 0));
        assert!(!dbi.may_be_dirty(key(0x40, 0)));
        assert_eq!(dbi.occupied_rows(), 0);
    }

    #[test]
    fn patterns_are_tracked_separately() {
        let mut dbi = DirtyBlockIndex::table1();
        dbi.mark_dirty(key(0x40, 0));
        assert!(!dbi.may_be_dirty(key(0x40, 7)));
        assert!(dbi.row_has_dirty(0x40, PatternId(0)));
        assert!(!dbi.row_has_dirty(0x40, PatternId(7)));
    }

    #[test]
    fn row_scope_is_8kb() {
        let mut dbi = DirtyBlockIndex::table1();
        dbi.mark_dirty(key(100, 0));
        assert!(dbi.row_has_dirty(8191, PatternId(0)), "same row");
        assert!(!dbi.row_has_dirty(8192, PatternId(0)), "next row");
    }

    #[test]
    fn dirty_lines_enumeration() {
        let mut dbi = DirtyBlockIndex::table1();
        dbi.mark_dirty(key(0, 7));
        dbi.mark_dirty(key(3 * 64, 7));
        dbi.mark_dirty(key(127 * 64, 7));
        let lines = dbi.dirty_lines_in_row(64, PatternId(7));
        let addrs: Vec<u64> = lines.iter().map(|k| k.addr).collect();
        assert_eq!(addrs, vec![0, 3 * 64, 127 * 64]);
        assert!(lines.iter().all(|k| k.pattern == PatternId(7)));
        assert!(dbi.dirty_lines_in_row(64, PatternId(0)).is_empty());
    }

    #[test]
    fn clear_is_idempotent_and_safe_when_absent() {
        let mut dbi = DirtyBlockIndex::table1();
        dbi.mark_clean(key(0x40, 0)); // no-op
        dbi.mark_dirty(key(0x40, 0));
        dbi.mark_clean(key(0x40, 0));
        dbi.mark_clean(key(0x40, 0));
        assert!(!dbi.may_be_dirty(key(0x40, 0)));
    }

    #[test]
    fn stats_count_fast_path() {
        let mut dbi = DirtyBlockIndex::table1();
        dbi.row_has_dirty(0, PatternId(0));
        dbi.mark_dirty(key(0, 0));
        dbi.row_has_dirty(0, PatternId(0));
        let s = dbi.stats();
        assert_eq!(s.row_queries, 2);
        assert_eq!(s.empty_row_queries, 1);
        assert_eq!(s.marks, 1);
    }
}
