//! PC-based stride prefetcher (paper §5.1).
//!
//! The analytics evaluation uses "a PC-based stride prefetcher \[6\]
//! (with prefetching degree of 4 \[44\]) that prefetches data into the L2
//! cache". This is the classic Baer–Chen reference-prediction table:
//! direct-mapped on the load PC, tracking the last address and stride
//! with a small confidence counter.

use gsdram_core::cast;
use gsdram_core::stats::{ReportStats, StatsNode};

/// One reference-prediction-table entry.
#[derive(Debug, Clone, Copy)]
struct Entry {
    pc: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

/// Statistics for the prefetcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Training observations.
    pub observations: u64,
    /// Prefetch addresses emitted.
    pub issued: u64,
}

impl ReportStats for PrefetchStats {
    fn stats_node(&self, name: &str) -> StatsNode {
        StatsNode::new(name)
            .counter("observations", self.observations)
            .counter("issued", self.issued)
    }
}

/// A PC-indexed stride prefetcher with configurable degree.
///
/// ```
/// use gsdram_cache::prefetch::StridePrefetcher;
/// let mut p = StridePrefetcher::degree4();
/// p.observe(0x400, 0);
/// p.observe(0x400, 64);                      // stride learned...
/// let lines = p.observe(0x400, 128);         // ...and confirmed
/// assert_eq!(lines, vec![192, 256, 320, 384]);
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<Option<Entry>>,
    degree: usize,
    line_bytes: u64,
    stats: PrefetchStats,
}

impl StridePrefetcher {
    /// The paper's configuration: degree 4, 256-entry table, 64 B lines.
    pub fn degree4() -> Self {
        Self::new(4, 256, 64)
    }

    /// A prefetcher with the given degree, table size and line size.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `degree` is zero.
    pub fn new(degree: usize, entries: usize, line_bytes: u64) -> Self {
        assert!(entries.is_power_of_two() && degree > 0);
        StridePrefetcher {
            table: vec![None; entries],
            degree,
            line_bytes,
            stats: PrefetchStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Trains on a demand access `(pc, addr)` and returns the *line*
    /// addresses to prefetch (empty until the stride is confident).
    ///
    /// Only distinct lines ahead of the access are returned, so a unit-
    /// stride stream prefetches `degree` upcoming lines, not duplicates
    /// of the current one.
    pub fn observe(&mut self, pc: u64, addr: u64) -> Vec<u64> {
        self.stats.observations += 1;
        let idx = cast::to_usize(pc) & (self.table.len() - 1);
        let mut out = Vec::new();
        match &mut self.table[idx] {
            Some(e) if e.pc == pc => {
                let stride = cast::signed(addr) - cast::signed(e.last_addr);
                if stride == e.stride && stride != 0 {
                    e.confidence = e.confidence.saturating_add(1).min(4);
                } else {
                    e.stride = stride;
                    e.confidence = 1;
                }
                e.last_addr = addr;
                if e.confidence >= 2 {
                    let cur_line = addr / self.line_bytes;
                    let mut seen_last = cur_line;
                    let degree = cast::signed(cast::widen(self.degree));
                    for d in 1..=degree {
                        let target = cast::signed(addr) + e.stride * d;
                        if target < 0 {
                            break;
                        }
                        let line = cast::unsigned(target) / self.line_bytes;
                        if line != seen_last {
                            out.push(line * self.line_bytes);
                            seen_last = line;
                        }
                    }
                }
            }
            _ => {
                self.table[idx] = Some(Entry {
                    pc,
                    last_addr: addr,
                    stride: 0,
                    confidence: 0,
                });
            }
        }
        self.stats.issued += cast::widen(out.len());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_training_before_issuing() {
        let mut p = StridePrefetcher::degree4();
        assert!(p.observe(0x400, 0).is_empty());
        assert!(p.observe(0x400, 64).is_empty()); // first stride observation
        let pf = p.observe(0x400, 128); // stride confirmed
        assert_eq!(pf, vec![192, 256, 320, 384]);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::degree4();
        p.observe(0x400, 0);
        p.observe(0x400, 64);
        p.observe(0x400, 128);
        assert!(p.observe(0x400, 1000).is_empty(), "broken stride");
        assert!(p.observe(0x400, 2000).is_empty(), "retraining");
        assert!(!p.observe(0x400, 3000).is_empty(), "new stride confirmed");
    }

    #[test]
    fn sub_line_strides_prefetch_distinct_lines() {
        // An 8-byte-stride stream must not emit four copies of the same
        // line.
        let mut p = StridePrefetcher::degree4();
        p.observe(0x400, 0);
        p.observe(0x400, 8);
        let pf = p.observe(0x400, 16);
        assert!(pf.len() <= 1, "{pf:?}");
    }

    #[test]
    fn big_strides_prefetch_degree_lines() {
        let mut p = StridePrefetcher::degree4();
        p.observe(0x400, 0);
        p.observe(0x400, 512);
        let pf = p.observe(0x400, 1024);
        assert_eq!(pf, vec![1536, 2048, 2560, 3072]);
    }

    #[test]
    fn different_pcs_do_not_interfere() {
        let mut p = StridePrefetcher::degree4();
        p.observe(0x400, 0);
        p.observe(0x401, 100_000);
        p.observe(0x400, 64);
        p.observe(0x401, 100_064);
        // 0x400's stream is still confident despite interleaving.
        let pf = p.observe(0x400, 128);
        assert!(!pf.is_empty());
    }

    #[test]
    fn zero_stride_never_prefetches() {
        let mut p = StridePrefetcher::degree4();
        for _ in 0..10 {
            assert!(p.observe(0x400, 64).is_empty());
        }
    }

    #[test]
    fn stats_count_observations_and_issues() {
        let mut p = StridePrefetcher::degree4();
        p.observe(0x400, 0);
        p.observe(0x400, 64);
        p.observe(0x400, 128);
        let s = p.stats();
        assert_eq!(s.observations, 3);
        assert_eq!(s.issued, 4);
    }
}
