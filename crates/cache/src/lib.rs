//! # gsdram-cache
//!
//! Pattern-ID-aware cache structures for the GS-DRAM end-to-end system
//! (paper §4.1, §5.1):
//!
//! * [`cache`] — ordinary (non-sectored) LRU set-associative caches whose
//!   tags carry the pattern ID a line was gathered with;
//! * [`overlap`] — the overlap sets behind the paper's two-patterns-per-
//!   page coherence scheme (flush-before-fetch, invalidate-on-write);
//! * [`prefetch`] — the PC-based stride prefetcher (degree 4) used in
//!   the analytics evaluation;
//! * [`sectored`] — the sectored-cache alternative §4.1 rejects, for
//!   quantitative comparison;
//! * [`dbi`] — the Dirty-Block Index accelerating the coherence flush
//!   check.
//!
//! ```
//! use gsdram_cache::cache::{CacheConfig, LineKey, SetAssocCache};
//! use gsdram_cache::overlap::OverlapCalc;
//! use gsdram_core::{GsDramConfig, PatternId};
//!
//! let mut l1 = SetAssocCache::new(CacheConfig::l1_32k());
//! let tuple = LineKey::new(0x40, 64, PatternId(0));
//! l1.fill(tuple, vec![0; 8]);
//!
//! // A stride-8 gathered line overlapping that tuple:
//! let calc = OverlapCalc::new(GsDramConfig::gs_dram_8_3_3(), 64, 128);
//! let fields = calc.overlapping_lines(tuple, PatternId(7), true);
//! assert_eq!(fields.len(), 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod dbi;
pub mod overlap;
pub mod prefetch;
pub mod sectored;
