//! A sectored cache (Liptay, IBM S/360 M85; §4.1's rejected
//! alternative).
//!
//! Instead of tagging whole gathered lines with a pattern ID, a
//! sectored cache keeps line-granularity tags with per-8-byte-sector
//! valid/dirty bits, and stores each gathered word in its *home* line's
//! sector. The paper rejects this design for two reasons it makes
//! measurable here:
//!
//! 1. a gathered access scatters its `chips` words over `chips`
//!    different tag entries (poor tag utilisation, and "a mechanism
//!    that does not store the gathered values in the same cache line
//!    cannot extract the full benefits of SIMD optimizations");
//! 2. written sectors evict as *partial* lines, forcing
//!    read-modify-write at the cache–DRAM interface ("writebacks may
//!    require read-modify-writes").
//!
//! The `ablation_sectored` harness drives this structure and the
//! pattern-tagged [`SetAssocCache`](crate::cache::SetAssocCache) with
//! the same gathered-access streams and reports those costs.

use crate::cache::CacheConfig;
use gsdram_core::cast;

/// Statistics for a sectored cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SectoredStats {
    /// Sector-granularity hits.
    pub hits: u64,
    /// Sector-granularity misses (absent line or invalid sector).
    pub misses: u64,
    /// Line (tag) evictions.
    pub evictions: u64,
    /// Evictions of lines with dirty sectors.
    pub writebacks: u64,
    /// Writebacks whose dirty mask did not cover the whole line —
    /// each needs a read-modify-write at the DRAM interface.
    pub partial_writebacks: u64,
}

impl SectoredStats {
    /// Miss ratio over all sector lookups.
    // gsdram-lint: allow-block(D5) report-only ratio; never feeds simulated timing
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Line {
    tag: u64,
    valid_mask: u8,
    dirty_mask: u8,
    lru: u64,
    data: Vec<u64>,
}

/// An evicted sectored line: possibly partial (see
/// [`SectoredStats::partial_writebacks`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedSectors {
    /// Line-aligned address.
    pub addr: u64,
    /// Bit `i` set = sector `i` holds valid data.
    pub valid_mask: u8,
    /// Bit `i` set = sector `i` is dirty.
    pub dirty_mask: u8,
    /// The line's words (only sectors in `valid_mask` are meaningful).
    pub data: Vec<u64>,
}

impl EvictedSectors {
    /// Whether writing this line back needs a read-modify-write (dirty
    /// but not fully valid).
    pub fn needs_rmw(&self, words_per_line: usize) -> bool {
        let full = if words_per_line >= 8 {
            0xff
        } else {
            (1u8 << words_per_line) - 1
        };
        self.dirty_mask != 0 && self.valid_mask != full
    }
}

/// An LRU set-associative sectored cache with 8-byte sectors.
///
/// ```
/// use gsdram_cache::{cache::CacheConfig, sectored::SectoredCache};
/// let mut c = SectoredCache::new(CacheConfig::l1_32k());
/// c.fill_sector(0x48, 7);
/// assert!(c.probe(0x48, false));      // that sector is resident
/// assert!(!c.probe(0x40, false));     // its line-mate is not
/// let (tags, utilisation) = c.tag_utilisation();
/// assert_eq!(tags, 1);
/// assert_eq!(utilisation, 0.125);     // 1 of 8 sectors valid
/// ```
#[derive(Debug, Clone)]
pub struct SectoredCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    lru_gen: u64,
    stats: SectoredStats,
}

impl SectoredCache {
    /// An empty sectored cache of the given shape.
    ///
    /// # Panics
    ///
    /// Panics unless lines have at most 8 sectors (one mask byte) and
    /// the set count is a power of two.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.words_per_line() <= 8, "one mask byte per line");
        let sets = cfg.sets();
        assert!(sets.is_power_of_two());
        SectoredCache {
            cfg,
            sets: vec![Vec::with_capacity(cfg.assoc); sets],
            lru_gen: 0,
            stats: SectoredStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> SectoredStats {
        self.stats
    }

    fn split(&self, addr: u64) -> (usize, u64, usize) {
        let line_bytes = cast::widen(self.cfg.line_bytes);
        let line = addr / line_bytes;
        let set = cast::to_usize(line % cast::widen(self.sets.len()));
        let sector = cast::to_usize((addr % line_bytes) / 8);
        (set, line, sector)
    }

    /// Looks up the sector holding `addr`; counts a hit or miss.
    pub fn probe(&mut self, addr: u64, write: bool) -> bool {
        self.lru_gen += 1;
        let gen = self.lru_gen;
        let (set, tag, sector) = self.split(addr);
        for l in &mut self.sets[set] {
            if l.tag == tag && l.valid_mask & (1 << sector) != 0 {
                l.lru = gen;
                if write {
                    l.dirty_mask |= 1 << sector;
                }
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Inserts one sector's data, allocating (or reusing) its home
    /// line's tag. Returns an eviction victim if a tag had to be
    /// replaced.
    pub fn fill_sector(&mut self, addr: u64, value: u64) -> Option<EvictedSectors> {
        self.lru_gen += 1;
        let gen = self.lru_gen;
        let (set, tag, sector) = self.split(addr);
        let words = self.cfg.words_per_line();
        // Sector merge into an existing tag.
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.tag == tag) {
            l.valid_mask |= 1 << sector;
            l.data[sector] = value;
            l.lru = gen;
            return None;
        }
        let mut new_line = Line {
            tag,
            valid_mask: 1 << sector,
            dirty_mask: 0,
            lru: gen,
            data: vec![0; words],
        };
        new_line.data[sector] = value;
        let assoc = self.cfg.assoc;
        let set_lines = &mut self.sets[set];
        if set_lines.len() < assoc {
            set_lines.push(new_line);
            return None;
        }
        let pos = set_lines
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.lru)
            .map(|(i, _)| i)
            // gsdram-lint: allow(D4) set_lines.len() == assoc >= 1 on this path
            .expect("non-empty");
        let victim = std::mem::replace(&mut set_lines[pos], new_line);
        self.stats.evictions += 1;
        let ev = EvictedSectors {
            addr: victim.tag * cast::widen(self.cfg.line_bytes),
            valid_mask: victim.valid_mask,
            dirty_mask: victim.dirty_mask,
            data: victim.data,
        };
        if ev.dirty_mask != 0 {
            self.stats.writebacks += 1;
            if ev.needs_rmw(words) {
                self.stats.partial_writebacks += 1;
            }
        }
        Some(ev)
    }

    /// Number of tag entries currently holding at least one valid
    /// sector, and the mean fraction of valid sectors per entry —
    /// the tag-utilisation metric of the §4.1 comparison.
    // gsdram-lint: allow-block(D5) report-only ratio; never feeds simulated timing
    pub fn tag_utilisation(&self) -> (usize, f64) {
        let lines: Vec<&Line> = self.sets.iter().flatten().collect();
        let tags = lines.len();
        if tags == 0 {
            return (0, 0.0);
        }
        let words = cast::len_to_u32(self.cfg.words_per_line());
        let avg = lines
            .iter()
            .map(|l| f64::from(l.valid_mask.count_ones()) / f64::from(words))
            .sum::<f64>()
            / tags as f64;
        (tags, avg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> SectoredCache {
        SectoredCache::new(CacheConfig {
            size_bytes: 2048,
            assoc: 2,
            line_bytes: 64,
            latency: 1,
        })
    }

    #[test]
    fn sector_fill_and_probe() {
        let mut c = cache();
        assert!(!c.probe(0x48, false));
        c.fill_sector(0x48, 7);
        assert!(c.probe(0x48, false));
        // Another sector of the same line is still a miss.
        assert!(!c.probe(0x40, false));
        assert_eq!(c.tag_utilisation().0, 1);
    }

    #[test]
    fn sectors_merge_into_one_tag() {
        let mut c = cache();
        for w in 0..8u64 {
            c.fill_sector(0x40 + w * 8, w);
        }
        let (tags, util) = c.tag_utilisation();
        assert_eq!(tags, 1);
        assert!((util - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gathered_access_scatters_across_tags() {
        // The §4.1 problem: one stride-8 gathered line of 8 words lands
        // in 8 different tag entries at 1/8 utilisation each.
        let mut c = cache();
        for k in 0..8u64 {
            c.fill_sector(k * 64, k); // word 0 of 8 consecutive lines
        }
        let (tags, util) = c.tag_utilisation();
        assert_eq!(tags, 8);
        assert!((util - 0.125).abs() < 1e-12);
    }

    #[test]
    fn partial_dirty_eviction_needs_rmw() {
        let mut c = cache();
        // Set 0 lines: line addresses 0, 1024, 2048 (16 sets × 64 B).
        c.fill_sector(0, 1);
        c.probe(0, true); // dirty sector 0 only
        c.fill_sector(1024, 2);
        let ev = c.fill_sector(2048, 3).expect("eviction");
        assert_eq!(ev.addr, 0);
        assert_eq!(ev.dirty_mask, 1);
        assert!(ev.needs_rmw(8));
        assert_eq!(c.stats().partial_writebacks, 1);
    }

    #[test]
    fn full_line_eviction_needs_no_rmw() {
        let mut c = cache();
        for w in 0..8u64 {
            c.fill_sector(w * 8, w);
            c.probe(w * 8, true);
        }
        c.fill_sector(1024, 0);
        let ev = c.fill_sector(2048, 0).expect("eviction");
        assert_eq!(ev.valid_mask, 0xff);
        assert!(!ev.needs_rmw(8));
        assert_eq!(c.stats().partial_writebacks, 0);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn lru_within_set() {
        let mut c = cache();
        c.fill_sector(0, 1);
        c.fill_sector(1024, 2);
        c.probe(0, false); // 0 becomes MRU
        let ev = c.fill_sector(2048, 3).expect("eviction");
        assert_eq!(ev.addr, 1024);
    }

    #[test]
    fn miss_rate() {
        let mut c = cache();
        c.probe(0, false);
        c.fill_sector(0, 1);
        c.probe(0, false);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }
}
