//! Pattern-ID-aware set-associative caches (paper §4.1).
//!
//! GS-DRAM keeps ordinary, non-sectored caches; the only change is that
//! each tag is extended with the `p`-bit pattern ID the line was fetched
//! with ("less than 0.6% cache area cost" — §4.4). Two cache lines with
//! the same address but different pattern IDs are distinct entries that
//! may *partially overlap* in memory; the coherence rules for that live
//! in [`crate::overlap`] and the system crate.

use gsdram_core::stats::{ReportStats, StatsNode};
use gsdram_core::{cast, PatternId};

/// Identity of a cached line: the line-aligned address plus the pattern
/// ID it was gathered with (§4.1 "each cache line can be uniquely
/// identified using the cache line address and the pattern ID").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineKey {
    /// Line-aligned byte address.
    pub addr: u64,
    /// Pattern the line was fetched with.
    pub pattern: PatternId,
}

impl LineKey {
    /// Key for `addr` rounded down to a line boundary.
    pub fn new(addr: u64, line_bytes: u64, pattern: PatternId) -> Self {
        LineKey {
            addr: addr / line_bytes * line_bytes,
            pattern,
        }
    }
}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Hit latency in CPU cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Table 1 L1: 32 KB, 8-way, 64 B lines.
    pub fn l1_32k() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 8,
            line_bytes: 64,
            latency: 3,
        }
    }

    /// Table 1 L2: 2 MB, 8-way, 64 B lines.
    pub fn l2_2m() -> Self {
        CacheConfig {
            size_bytes: 2 * 1024 * 1024,
            assoc: 8,
            line_bytes: 64,
            latency: 12,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.assoc * self.line_bytes)
    }

    /// 8-byte words per line.
    pub fn words_per_line(&self) -> usize {
        self.line_bytes / 8
    }
}

/// Hit/miss statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines evicted by fills.
    pub evictions: u64,
    /// Dirty lines written back (by eviction or invalidation).
    pub writebacks: u64,
    /// Lines removed by explicit invalidation.
    pub invalidations: u64,
}

impl ReportStats for CacheStats {
    fn stats_node(&self, name: &str) -> StatsNode {
        StatsNode::new(name)
            .counter("hits", self.hits)
            .counter("misses", self.misses)
            .counter("evictions", self.evictions)
            .counter("writebacks", self.writebacks)
            .counter("invalidations", self.invalidations)
            .gauge("miss_rate", self.miss_rate())
    }
}

impl CacheStats {
    /// Miss ratio over all lookups.
    // gsdram-lint: allow-block(D5) report-only ratio; never feeds simulated timing
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A line pushed out of the cache, with its data if dirty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedLine {
    /// Identity of the evicted line.
    pub key: LineKey,
    /// Whether it held modified data that must be written back.
    pub dirty: bool,
    /// The line's words.
    pub data: Vec<u64>,
}

#[derive(Debug, Clone)]
struct Slot {
    valid: bool,
    key: LineKey,
    dirty: bool,
    lru: u64,
    data: Vec<u64>,
}

/// An LRU set-associative write-back, write-allocate cache with
/// pattern-extended tags.
///
/// ```
/// use gsdram_cache::cache::{CacheConfig, LineKey, SetAssocCache};
/// use gsdram_core::PatternId;
/// let mut c = SetAssocCache::new(CacheConfig::l1_32k());
/// let key = LineKey::new(0x1000, 64, PatternId(7));
/// assert!(!c.probe(key, false));
/// c.fill(key, vec![0; 8]);
/// assert!(c.probe(key, false));
/// // Same address under the default pattern is a different line.
/// assert!(!c.probe(LineKey::new(0x1000, 64, PatternId(0)), false));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Slot>>,
    lru_gen: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// An empty cache of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not divide into a whole power-of-
    /// two number of sets.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a power of two"
        );
        SetAssocCache {
            cfg,
            sets: vec![Vec::with_capacity(cfg.assoc); sets],
            lru_gen: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_index(&self, key: LineKey) -> usize {
        let line = key.addr / cast::widen(self.cfg.line_bytes);
        cast::to_usize(line % cast::widen(self.sets.len()))
    }

    /// Looks up `key`; on a hit updates LRU (and the dirty bit if
    /// `write`) and returns `true`. Counts a hit or miss.
    pub fn probe(&mut self, key: LineKey, write: bool) -> bool {
        self.lru_gen += 1;
        let gen = self.lru_gen;
        let set = self.set_index(key);
        for slot in &mut self.sets[set] {
            if slot.valid && slot.key == key {
                slot.lru = gen;
                if write {
                    slot.dirty = true;
                }
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Whether `key` is present, without touching LRU or statistics.
    pub fn contains(&self, key: LineKey) -> bool {
        let set = self.set_index(key);
        self.sets[set].iter().any(|s| s.valid && s.key == key)
    }

    /// Whether `key` is present and dirty (no LRU/stat effects).
    pub fn is_dirty(&self, key: LineKey) -> bool {
        let set = self.set_index(key);
        self.sets[set]
            .iter()
            .any(|s| s.valid && s.key == key && s.dirty)
    }

    /// Immutable view of a resident line's words.
    pub fn data(&self, key: LineKey) -> Option<&[u64]> {
        let set = self.set_index(key);
        self.sets[set]
            .iter()
            .find(|s| s.valid && s.key == key)
            .map(|s| s.data.as_slice())
    }

    /// Mutable view of a resident line's words; marks it dirty.
    pub fn data_mut(&mut self, key: LineKey) -> Option<&mut [u64]> {
        let set = self.set_index(key);
        self.sets[set]
            .iter_mut()
            .find(|s| s.valid && s.key == key)
            .map(|s| {
                s.dirty = true;
                s.data.as_mut_slice()
            })
    }

    /// Inserts a clean line, evicting the LRU way if the set is full.
    /// Returns the eviction victim (with data, for writeback) if any.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one line of words, or the key is
    /// already resident (fill must follow a miss).
    pub fn fill(&mut self, key: LineKey, data: Vec<u64>) -> Option<EvictedLine> {
        assert_eq!(
            data.len(),
            self.cfg.words_per_line(),
            "fill data must be one line"
        );
        assert!(!self.contains(key), "double fill of {key:?}");
        self.lru_gen += 1;
        let gen = self.lru_gen;
        let set_idx = self.set_index(key);
        let assoc = self.cfg.assoc;
        let set = &mut self.sets[set_idx];
        let new_slot = Slot {
            valid: true,
            key,
            dirty: false,
            lru: gen,
            data,
        };
        if set.len() < assoc {
            set.push(new_slot);
            return None;
        }
        // Evict the LRU valid slot (or reuse an invalid one).
        if let Some(pos) = set.iter().position(|s| !s.valid) {
            set[pos] = new_slot;
            return None;
        }
        let pos = set
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.lru)
            .map(|(i, _)| i)
            // gsdram-lint: allow(D4) set.len() == assoc >= 1 on this path
            .expect("set is non-empty");
        let victim = std::mem::replace(&mut set[pos], new_slot);
        self.stats.evictions += 1;
        if victim.dirty {
            self.stats.writebacks += 1;
        }
        Some(EvictedLine {
            key: victim.key,
            dirty: victim.dirty,
            data: victim.data,
        })
    }

    /// [`SetAssocCache::fill`] from a borrowed line: callers holding a
    /// scratch buffer (the DRAM bridge's line path) install a copy
    /// without first cloning into an owned `Vec` at the call site.
    ///
    /// # Panics
    ///
    /// As [`SetAssocCache::fill`].
    pub fn fill_from(&mut self, key: LineKey, data: &[u64]) -> Option<EvictedLine> {
        self.fill(key, data.to_vec())
    }

    /// Removes `key` if present; returns it (for writeback when dirty).
    pub fn invalidate(&mut self, key: LineKey) -> Option<EvictedLine> {
        let set = self.set_index(key);
        let pos = self.sets[set]
            .iter()
            .position(|s| s.valid && s.key == key)?;
        let victim = self.sets[set].swap_remove(pos);
        self.stats.invalidations += 1;
        if victim.dirty {
            self.stats.writebacks += 1;
        }
        Some(EvictedLine {
            key: victim.key,
            dirty: victim.dirty,
            data: victim.data,
        })
    }

    /// All resident keys (diagnostics/tests).
    pub fn resident_keys(&self) -> Vec<LineKey> {
        self.sets
            .iter()
            .flatten()
            .filter(|s| s.valid)
            .map(|s| s.key)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets × 2 ways × 64 B = 512 B.
        SetAssocCache::new(CacheConfig {
            size_bytes: 512,
            assoc: 2,
            line_bytes: 64,
            latency: 1,
        })
    }

    fn key(addr: u64) -> LineKey {
        LineKey::new(addr, 64, PatternId(0))
    }

    #[test]
    fn key_is_line_aligned() {
        assert_eq!(key(0x1009).addr, 0x1000);
        assert_eq!(key(0x103f).addr, 0x1000);
        assert_eq!(key(0x1040).addr, 0x1040);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.probe(key(0), false));
        c.fill(key(0), vec![1; 8]);
        assert!(c.probe(key(0), false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.data(key(0)).unwrap(), &[1; 8]);
    }

    #[test]
    fn pattern_distinguishes_lines() {
        let mut c = tiny();
        let a = LineKey::new(0, 64, PatternId(0));
        let b = LineKey::new(0, 64, PatternId(7));
        c.fill(a, vec![1; 8]);
        c.fill(b, vec![2; 8]);
        assert_eq!(c.data(a).unwrap(), &[1; 8]);
        assert_eq!(c.data(b).unwrap(), &[2; 8]);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines mapping to set 0: addresses 0, 256, 512 (4 sets × 64 B).
        c.fill(key(0), vec![0; 8]);
        c.fill(key(256), vec![1; 8]);
        c.probe(key(0), false); // 0 becomes MRU
        let ev = c.fill(key(512), vec![2; 8]).expect("must evict");
        assert_eq!(ev.key, key(256));
        assert!(c.contains(key(0)));
        assert!(c.contains(key(512)));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(key(0), vec![0; 8]);
        c.probe(key(0), true); // dirty
        c.fill(key(256), vec![1; 8]);
        let ev = c.fill(key(512), vec![2; 8]).expect("must evict");
        assert_eq!(ev.key, key(0));
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_probe_marks_dirty() {
        let mut c = tiny();
        c.fill(key(0), vec![0; 8]);
        assert!(!c.is_dirty(key(0)));
        c.probe(key(0), true);
        assert!(c.is_dirty(key(0)));
    }

    #[test]
    fn data_mut_marks_dirty() {
        let mut c = tiny();
        c.fill(key(0), vec![0; 8]);
        c.data_mut(key(0)).unwrap()[3] = 99;
        assert!(c.is_dirty(key(0)));
        assert_eq!(c.data(key(0)).unwrap()[3], 99);
    }

    #[test]
    fn invalidate_returns_dirty_line() {
        let mut c = tiny();
        c.fill(key(0), vec![7; 8]);
        c.probe(key(0), true);
        let ev = c.invalidate(key(0)).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.data, vec![7; 8]);
        assert!(!c.contains(key(0)));
        assert!(c.invalidate(key(0)).is_none());
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn table1_shapes() {
        let l1 = CacheConfig::l1_32k();
        assert_eq!(l1.sets(), 64);
        assert_eq!(l1.words_per_line(), 8);
        let l2 = CacheConfig::l2_2m();
        assert_eq!(l2.sets(), 4096);
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = tiny();
        c.probe(key(0), false);
        c.fill(key(0), vec![0; 8]);
        c.probe(key(0), false);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn resident_keys_lists_contents() {
        let mut c = tiny();
        c.fill(key(0), vec![0; 8]);
        c.fill(key(64), vec![0; 8]);
        let mut keys = c.resident_keys();
        keys.sort();
        assert_eq!(keys, vec![key(0), key(64)]);
    }
}
