//! Overlap computation for pattern-tagged cache lines (paper §4.1).
//!
//! Cache lines fetched with different pattern IDs may partially overlap
//! in physical memory (e.g. a tuple line and a field line share one
//! field). The paper restricts each page to two patterns — the default
//! pattern 0 and one alternate — and keeps them coherent by:
//!
//! 1. flushing dirty overlapping other-pattern lines before a fetch, and
//! 2. invalidating overlapping other-pattern lines when a line is
//!    modified (at most `chips` invalidations per write — §4.4).
//!
//! This module computes those overlap sets. Both lines of an overlapping
//! pair live in the same DRAM row, so all addresses stay within one
//! row's address range.

use crate::cache::LineKey;
use gsdram_core::{
    cast, column_containing, gathered_elements, gathered_elements_into, ColumnId, GsDramConfig,
    PatternId,
};

/// Computes overlaps between pattern-tagged lines for a given module
/// configuration and row geometry.
#[derive(Debug, Clone)]
pub struct OverlapCalc {
    cfg: GsDramConfig,
    line_bytes: u64,
    cols_per_row: u64,
    /// Element scratch for [`OverlapCalc::word_addresses_into`], reused
    /// across calls so the per-access line path never allocates.
    elems: Vec<usize>,
}

impl OverlapCalc {
    /// An overlap calculator for lines of `line_bytes` within rows of
    /// `cols_per_row` lines.
    pub fn new(cfg: GsDramConfig, line_bytes: u64, cols_per_row: u64) -> Self {
        OverlapCalc {
            cfg,
            line_bytes,
            cols_per_row,
            elems: Vec::new(),
        }
    }

    /// Bytes covered by one DRAM row.
    pub fn row_bytes(&self) -> u64 {
        self.line_bytes * self.cols_per_row
    }

    fn split(&self, addr: u64) -> (u64, ColumnId) {
        let row_base = addr / self.row_bytes() * self.row_bytes();
        let col = cast::to_u32((addr - row_base) / self.line_bytes);
        (row_base, ColumnId(col))
    }

    /// The physical byte address of logical row element `e` relative to
    /// `row_base`.
    fn element_addr(&self, row_base: u64, e: usize) -> u64 {
        let chips = cast::widen(self.cfg.chips());
        let e = cast::widen(e);
        row_base + (e / chips) * self.line_bytes + (e % chips) * 8
    }

    /// The byte addresses of the 8-byte words a line covers, in assembly
    /// order (word `k` of the cached line holds the value at the `k`-th
    /// returned address).
    pub fn word_addresses(&self, key: LineKey, shuffled: bool) -> Vec<u64> {
        let (row_base, col) = self.split(key.addr);
        gathered_elements(&self.cfg, key.pattern, col, shuffled)
            .into_iter()
            .map(|e| self.element_addr(row_base, e))
            .collect()
    }

    /// [`OverlapCalc::word_addresses`] into a caller-provided buffer
    /// (cleared first). Takes `&mut self` for an internal element
    /// scratch; the per-access line path allocates nothing.
    pub fn word_addresses_into(&mut self, key: LineKey, shuffled: bool, out: &mut Vec<u64>) {
        let (row_base, col) = self.split(key.addr);
        let mut elems = std::mem::take(&mut self.elems);
        gathered_elements_into(&self.cfg, key.pattern, col, shuffled, &mut elems);
        out.clear();
        out.extend(elems.iter().map(|&e| self.element_addr(row_base, e)));
        self.elems = elems;
    }

    /// The lines of pattern `other` that share at least one word with
    /// `key` (deduplicated, ascending). When `other == key.pattern` the
    /// only overlapping line is `key` itself.
    pub fn overlapping_lines(
        &self,
        key: LineKey,
        other: PatternId,
        shuffled: bool,
    ) -> Vec<LineKey> {
        if other == key.pattern {
            return vec![key];
        }
        let (row_base, col) = self.split(key.addr);
        let mut out: Vec<LineKey> = gathered_elements(&self.cfg, key.pattern, col, shuffled)
            .into_iter()
            .map(|e| {
                let c = column_containing(&self.cfg, other, e, shuffled);
                LineKey {
                    addr: row_base + u64::from(c.0) * self.line_bytes,
                    pattern: other,
                }
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Whether two keys overlap (share at least one word).
    pub fn overlaps(&self, a: LineKey, b: LineKey, shuffled: bool) -> bool {
        if a.pattern == b.pattern {
            return a == b;
        }
        self.overlapping_lines(a, b.pattern, shuffled).contains(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calc() -> OverlapCalc {
        OverlapCalc::new(GsDramConfig::gs_dram_8_3_3(), 64, 128)
    }

    #[test]
    fn default_pattern_words_are_contiguous() {
        let c = calc();
        let key = LineKey {
            addr: 0x2000,
            pattern: PatternId(0),
        };
        let words = c.word_addresses(key, true);
        let want: Vec<u64> = (0..8).map(|i| 0x2000 + i * 8).collect();
        assert_eq!(words, want);
    }

    #[test]
    fn word_addresses_into_matches_allocating_form() {
        let mut c = calc();
        let mut buf = vec![0xdead; 3]; // stale contents must be cleared
        for p in [0u8, 3, 7] {
            for col in 0..8u64 {
                let key = LineKey {
                    addr: col * 64,
                    pattern: PatternId(p),
                };
                for shuffled in [false, true] {
                    c.word_addresses_into(key, shuffled, &mut buf);
                    assert_eq!(buf, c.word_addresses(key, shuffled), "{key:?}");
                }
            }
        }
    }

    #[test]
    fn pattern7_words_stride_by_64() {
        // A stride-8 gather covers word 0 of eight consecutive lines.
        let c = calc();
        let key = LineKey {
            addr: 0,
            pattern: PatternId(7),
        };
        let words = c.word_addresses(key, true);
        let want: Vec<u64> = (0..8).map(|i| i * 64).collect();
        assert_eq!(words, want);
    }

    #[test]
    fn tuple_line_overlaps_eight_field_lines() {
        // §4.4: a write must check `chips` (8) lines of the other pattern.
        let c = calc();
        let tuple = LineKey {
            addr: 0x40,
            pattern: PatternId(0),
        };
        let fields = c.overlapping_lines(tuple, PatternId(7), true);
        assert_eq!(fields.len(), 8);
        for f in &fields {
            assert_eq!(f.pattern, PatternId(7));
            assert!(c.overlaps(tuple, *f, true));
            assert!(c.overlaps(*f, tuple, true));
        }
    }

    #[test]
    fn field_line_overlaps_eight_tuple_lines() {
        let c = calc();
        let field = LineKey {
            addr: 0,
            pattern: PatternId(7),
        };
        let tuples = c.overlapping_lines(field, PatternId(0), true);
        let want: Vec<u64> = (0..8).map(|i| i * 64).collect();
        assert_eq!(tuples.iter().map(|k| k.addr).collect::<Vec<_>>(), want);
    }

    #[test]
    fn same_pattern_overlap_is_identity() {
        let c = calc();
        let k = LineKey {
            addr: 0x80,
            pattern: PatternId(3),
        };
        assert_eq!(c.overlapping_lines(k, PatternId(3), true), vec![k]);
        assert!(c.overlaps(k, k, true));
        let other = LineKey {
            addr: 0xc0,
            pattern: PatternId(3),
        };
        assert!(!c.overlaps(k, other, true));
    }

    #[test]
    fn overlap_symmetry_via_word_addresses() {
        // Overlap judged structurally must agree with shared words.
        let c = calc();
        for pa in [0u8, 3, 7] {
            for pb in [0u8, 3, 7] {
                let a = LineKey {
                    addr: 0x100,
                    pattern: PatternId(pa),
                };
                let wa = c.word_addresses(a, true);
                for col in 0..16u64 {
                    let b = LineKey {
                        addr: col * 64,
                        pattern: PatternId(pb),
                    };
                    let wb = c.word_addresses(b, true);
                    let share = wa.iter().any(|w| wb.contains(w));
                    assert_eq!(c.overlaps(a, b, true), share, "a={a:?} b={b:?}");
                }
            }
        }
    }

    #[test]
    fn rows_do_not_leak() {
        // Overlapping lines stay inside the row of the source line.
        let c = calc();
        let key = LineKey {
            addr: 8192 + 0x40,
            pattern: PatternId(0),
        };
        for l in c.overlapping_lines(key, PatternId(7), true) {
            assert!(l.addr >= 8192 && l.addr < 16384);
        }
    }
}
