//! End-to-end HTAP demo (paper §5.1): real-time analytics and
//! transactions on the *same* table, on the full simulated machine
//! (cores + caches + prefetcher + FR-FCFS DDR3 + GS-DRAM).
//!
//! Compares the three storage mechanisms and prints analytics latency,
//! transaction throughput and energy.
//!
//! Run: `cargo run --release --example imdb_htap`

// Examples are demos: their console narrative IS the deliverable.
#![allow(clippy::print_stdout)]
use gsdram::system::config::SystemConfig;
use gsdram::system::machine::{Machine, StopWhen};
use gsdram::system::ops::Program;
use gsdram::workloads::imdb::{analytics, transactions, Layout, Table, TxnSpec};

fn main() {
    let tuples: u64 = 64 * 1024;
    println!("HTAP on a {tuples}-tuple table: analytics (sum of column 0) on core 0,");
    println!("endless transactions (1 read + 1 write field) on core 1, with prefetching.\n");
    println!(
        "{:<13} {:>15} {:>16} {:>12}",
        "mechanism", "analytics (Mc)", "txn thr. (M/s)", "energy (mJ)"
    );
    for layout in Layout::ALL {
        let cfg = SystemConfig::table1(2, (tuples as usize * 64) * 2).with_prefetch();
        let mut m = Machine::new(cfg);
        let table = Table::create(&mut m, layout, tuples);
        let mut anal = analytics(table, &[0]);
        let spec = TxnSpec {
            read_only: 1,
            write_only: 1,
            read_write: 0,
        };
        let mut txn = transactions(table, spec, u64::MAX, 2026);
        let r = {
            let mut programs: Vec<&mut dyn Program> = vec![&mut anal, &mut txn];
            m.run(&mut programs, StopWhen::CoreDone(0))
        };
        // (No sum check here: the transaction thread concurrently
        // mutates random fields, so the scanned column is a moving
        // target — the single-threaded analytics example and tests
        // verify sums exactly.)
        let secs = r.seconds(m.config());
        println!(
            "{:<13} {:>15.2} {:>16.2} {:>12.2}",
            layout.label(),
            r.cpu_cycles as f64 / 1e6,
            r.progress[1] as f64 / secs / 1e6,
            r.energy.total_mj()
        );
    }
    println!();
    println!("GS-DRAM gets the column store's analytics latency AND the row");
    println!("store's (or better) transaction throughput — the paper's headline.");
}
