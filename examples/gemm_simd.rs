//! GEMM with SIMD over GS-DRAM (paper §5.2): shows how pattern loads
//! eliminate the software gather of B-column values into SIMD
//! registers, and verifies the gathered data functionally.
//!
//! Run: `cargo run --release --example gemm_simd`

// Examples are demos: their console narrative IS the deliverable.
#![allow(clippy::print_stdout)]
use gsdram::core::PatternId;
use gsdram::system::config::SystemConfig;
use gsdram::system::machine::{Machine, StopWhen};
use gsdram::system::ops::{Op, Program, ScriptedProgram};
use gsdram::workloads::gemm::{program, Gemm, GemmVariant};

fn main() {
    let n = 128;

    // Part 1: functional demo — pattern-7 loads really do return B's
    // tile columns.
    let mut m = Machine::new(SystemConfig::table1(1, 16 << 20));
    let g = Gemm::create(&mut m, n, GemmVariant::GsDram { tile: 32 });
    g.init(&mut m);
    let ops: Vec<Op> = (0..8)
        .map(|k| Op::Load {
            pc: 1,
            addr: g.b_gather_addr(k, 5),
            pattern: PatternId(7),
        })
        .collect();
    let mut probe = ScriptedProgram::new(ops);
    {
        let mut programs: Vec<&mut dyn Program> = vec![&mut probe];
        m.run(&mut programs, StopWhen::AllDone);
    }
    println!(
        "column 5 of B's first tile via ONE gathered line: {:?}",
        probe.loaded_values()
    );
    let want: Vec<u64> = (0..8).map(|k| (k * n + 5 + 1) as u64).collect();
    assert_eq!(probe.loaded_values(), &want[..]);

    // Part 2: timing — baseline software gather vs pattern loads.
    println!();
    println!("{n}x{n} GEMM, dot-product SIMD, register-blocked micro-kernel:");
    println!(
        "{:<18} {:>12} {:>12} {:>14}",
        "variant", "Mcycles", "Mops", "energy (mJ)"
    );
    let mut cycles = Vec::new();
    for variant in [
        GemmVariant::Naive,
        GemmVariant::Tiled { tile: 32 },
        GemmVariant::TiledSimd { tile: 32 },
        GemmVariant::GsDram { tile: 32 },
    ] {
        let mut m = Machine::new(SystemConfig::table1(1, 16 << 20));
        let g = Gemm::create(&mut m, n, variant);
        g.init(&mut m);
        let (mut p, _) = program(g, None);
        let r = {
            let mut programs: Vec<&mut dyn Program> = vec![&mut p];
            m.run(&mut programs, StopWhen::AllDone)
        };
        println!(
            "{:<18} {:>12.2} {:>12.2} {:>14.2}",
            variant.label(),
            r.cpu_cycles as f64 / 1e6,
            r.ops as f64 / 1e6,
            r.energy.total_mj()
        );
        cycles.push((variant.label(), r.cpu_cycles));
    }
    let simd = cycles[2].1 as f64;
    let gs = cycles[3].1 as f64;
    println!();
    println!(
        "GS-DRAM vs best tiled+SIMD: {:.1}% faster (paper: ~10%)",
        (1.0 - gs / simd) * 100.0
    );
}
