//! Key-value store over GS-DRAM (paper §5.3): lookups scan cache lines
//! of *keys only* (pattern 1, stride 2), while inserts keep the
//! pair-per-line layout (pattern 0).
//!
//! Run: `cargo run --release --example kvstore_scan`

// Examples are demos: their console narrative IS the deliverable.
#![allow(clippy::print_stdout)]
use gsdram::system::config::SystemConfig;
use gsdram::system::machine::{Machine, StopWhen};
use gsdram::system::ops::Program;
use gsdram::workloads::kvstore::{inserts, lookups, KvLayout, KvStore};

fn main() {
    let pairs: u64 = 32 * 1024;
    println!("key-value store with {pairs} 16-byte pairs (8 B key + 8 B value)\n");
    println!(
        "{:<22} {:>12} {:>12} {:>14}",
        "operation", "layout", "Mcycles", "DRAM reads"
    );
    for (opname, is_lookup) in [("64 lookup scans", true), ("4000 inserts", false)] {
        for layout in [KvLayout::Interleaved, KvLayout::GsDram] {
            let mut m = Machine::new(SystemConfig::table1(1, (pairs as usize * 16) * 4));
            let kv = KvStore::create(&mut m, layout, pairs);
            let mut p = if is_lookup {
                lookups(kv, pairs / 2, 64, 1)
            } else {
                inserts(kv, 4000, 1)
            };
            let r = {
                let mut programs: Vec<&mut dyn Program> = vec![&mut p];
                m.run(&mut programs, StopWhen::AllDone)
            };
            println!(
                "{:<22} {:>12} {:>12.2} {:>14}",
                opname,
                match layout {
                    KvLayout::Interleaved => "plain",
                    KvLayout::GsDram => "GS-DRAM",
                },
                r.cpu_cycles as f64 / 1e6,
                r.dram.reads
            );
        }
    }
    println!();
    println!("pattern-1 gathers halve the lines a key scan touches (8 keys per");
    println!("line instead of 4 key-value pairs); inserts are unaffected.");
}
