//! Quickstart: the GS-DRAM substrate in isolation.
//!
//! Builds the paper's running example (a table of tuples, Figures 1–7):
//! stores tuples as ordinary cache lines, then gathers one field of
//! many tuples with a single column command.
//!
//! Run: `cargo run --example quickstart`

// Examples are demos: their console narrative IS the deliverable.
#![allow(clippy::print_stdout)]
use gsdram::core::{
    analysis::{reads_for_stride, MappingScheme},
    ColumnId, Geometry, GsDramConfig, GsModule, PatternId, RowId,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The evaluated configuration: 8 chips, 3 shuffle stages, 3-bit
    // pattern IDs → 64-byte cache lines, strides 1..8 gatherable.
    let cfg = GsDramConfig::gs_dram_8_3_3();
    let geom = Geometry::ddr3_row(&cfg, 1)?;
    let mut dram = GsModule::new(cfg.clone(), geom);

    // A tiny database table: 16 tuples of eight 8-byte fields, one
    // tuple per cache line. Value convention: tuple*100 + field.
    println!("storing 16 tuples (pattern 0, shuffled) ...");
    for t in 0..16u64 {
        let tuple: Vec<u64> = (0..8).map(|f| t * 100 + f).collect();
        dram.write_line(RowId(0), ColumnId(t as u32), PatternId(0), true, &tuple)?;
    }

    // Ordinary access: one tuple per READ.
    let tuple5 = dram.read_line(RowId(0), ColumnId(5), PatternId(0), true)?;
    println!("READ col 5, pattern 0  -> tuple 5        = {tuple5:?}");

    // Gathered access: field 3 of tuples 0..8 with ONE read command.
    // (pattern 7 = stride 8; column 3 selects field 3 — §4.3.)
    let field3 = dram.read_line(RowId(0), ColumnId(3), PatternId(7), true)?;
    println!("READ col 3, pattern 7  -> field 3 of 0..8 = {field3:?}");
    assert_eq!(field3, (0..8).map(|t| t * 100 + 3).collect::<Vec<u64>>());

    // And field 3 of the next eight tuples (columns 8..16).
    let field3b = dram.read_line(RowId(0), ColumnId(8 + 3), PatternId(7), true)?;
    println!("READ col 11, pattern 7 -> field 3 of 8..16 = {field3b:?}");

    // Scatter: update field 0 of tuples 0..8 with one WRITE command.
    dram.write_line(
        RowId(0),
        ColumnId(0),
        PatternId(7),
        true,
        &[90, 91, 92, 93, 94, 95, 96, 97],
    )?;
    let tuple2 = dram.read_line(RowId(0), ColumnId(2), PatternId(0), true)?;
    println!("after pattern-7 scatter, tuple 2          = {tuple2:?}");
    assert_eq!(tuple2[0], 92);

    // Why the shuffle matters: READ commands needed for one line of a
    // stride-8 gather under each mapping.
    println!();
    println!("READs per gathered line (stride 8):");
    println!(
        "  naive word-i-to-chip-i mapping: {}",
        reads_for_stride(&cfg, MappingScheme::Naive, 8)
    );
    println!(
        "  column-ID shuffled mapping:     {}",
        reads_for_stride(&cfg, MappingScheme::Shuffled, 8)
    );
    Ok(())
}
