//! The stride-access planner: covering arbitrary (including
//! non-power-of-2) strides with a minimal mix of pattern commands
//! (paper §3.1's "similar approach can be used to support
//! non-power-of-2 strides" + the §6 extensions).
//!
//! Run: `cargo run --example stride_planner`

// Examples are demos: their console narrative IS the deliverable.
#![allow(clippy::print_stdout)]
use gsdram::core::plan::{baseline_commands, plan_stats, plan_stride};
use gsdram::core::GsDramConfig;

fn main() {
    let cfg = GsDramConfig::gs_dram_8_3_3();
    println!("planning gathers of 64 elements from one 8 KB DRAM row");
    println!("(GS-DRAM(8,3,3): patterns 0..8, 8 words per command)\n");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>10}",
        "stride", "commands", "baseline", "saved", "efficiency"
    );
    for stride in [1usize, 2, 3, 4, 5, 6, 7, 8, 12, 16] {
        let count = 64.min(1024 / stride);
        let plan = plan_stride(&cfg, 128, 0, stride, count);
        let stats = plan_stats(&cfg, &plan);
        let base = baseline_commands(&cfg, 0, stride, count);
        println!(
            "{:<8} {:>10} {:>12} {:>11}% {:>9.0}%",
            stride,
            stats.commands,
            base,
            (100 * (base - stats.commands)) / base.max(1),
            stats.efficiency() * 100.0
        );
    }

    println!("\nthe stride-3 plan mixes patterns (first five commands):");
    let plan = plan_stride(&cfg, 128, 0, 3, 64);
    for p in plan.iter().take(5) {
        let elements: Vec<usize> = p.useful.iter().map(|u| u.1).collect();
        println!(
            "  pattern {} col {:>3} -> {} useful words {:?}",
            p.pattern.0,
            p.col.0,
            p.useful.len(),
            elements
        );
    }
}
