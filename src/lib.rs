//! # gsdram
//!
//! A from-scratch Rust reproduction of **Gather-Scatter DRAM: In-DRAM
//! Address Translation to Improve the Spatial Locality of Non-unit
//! Strided Accesses** (Seshadri et al., MICRO-48, 2015).
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`core`] — the GS-DRAM substrate: data shuffling (§3.2), per-chip
//!   column translation (§3.3), the functional module model, chip-
//!   conflict analysis and the §6 extensions;
//! * [`dram`] — a DDR3-1600 timing/energy substrate with an FR-FCFS
//!   memory controller (the Table 1 memory system);
//! * [`cache`] — pattern-tagged caches, overlap coherence and a stride
//!   prefetcher (§4.1, §5.1);
//! * [`system`] — the end-to-end machine: in-order cores executing
//!   `pattload`/`pattstore` (§4.2) over `pattmalloc`-managed pages
//!   (§4.3), with CPU + DRAM energy accounting;
//! * [`workloads`] — the evaluated applications: in-memory database,
//!   GEMM, key-value store and graph processing (§5).
//!
//! ## Quickstart
//!
//! One `pattload` with pattern 7 gathers one field of eight tuples:
//!
//! ```
//! use gsdram::core::{GsModule, GsDramConfig, Geometry, RowId, ColumnId, PatternId};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = GsDramConfig::gs_dram_8_3_3();
//! let geom = Geometry::ddr3_row(&cfg, 1)?;
//! let mut dram = GsModule::new(cfg, geom);
//! for t in 0..8u64 {
//!     let tuple: Vec<u64> = (0..8).map(|f| t * 100 + f).collect();
//!     dram.write_line(RowId(0), ColumnId(t as u32), PatternId(0), true, &tuple)?;
//! }
//! let field0 = dram.read_line(RowId(0), ColumnId(0), PatternId(7), true)?;
//! assert_eq!(field0, vec![0, 100, 200, 300, 400, 500, 600, 700]);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end system runs and `crates/bench` for the
//! binaries that regenerate every table and figure of the paper.

#![warn(missing_docs)]

pub use gsdram_cache as cache;
pub use gsdram_core as core;
pub use gsdram_dram as dram;
pub use gsdram_system as system;
pub use gsdram_workloads as workloads;
